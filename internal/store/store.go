package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"transproc/internal/metrics"
)

// Options configures a Store.
type Options struct {
	// PoolPages is the buffer-pool size in frames (default 32).
	PoolPages int
	// Barrier runs before any dirty page reaches the device — wire the
	// scheduler WAL's Sync here to enforce the write-ahead rule.
	Barrier func() error
	// Inject receives named crash points (store:page-write, …); wire
	// the fault injector's Point here in torture runs.
	Inject func(string)
	// Metrics receives page/pool counters; nil is a no-op.
	Metrics *metrics.Registry
	// FlushEach forces a full flush after every mutation. Slow, but it
	// maximizes the flushed-page/unlogged-record window the composed
	// recovery has to undo — the torture battery's favorite setting.
	FlushEach bool
}

// rid locates a record: which page, which slot.
type rid struct {
	page PageID
	slot int
}

// Health summarizes what Open found on disk.
type Health struct {
	// Pages is the heap-file page count at open.
	Pages int
	// TornDetected counts pages whose checksum failed at open.
	TornDetected int
	// TornRepaired counts torn pages reformatted empty at open. The
	// records they held are gone — the subsystem reconcile pass
	// re-derives them from the WAL.
	TornRepaired int
}

// Store is a durable string→int64 record store over slotted heap
// pages: an in-memory key directory and free-space map (both rebuilt
// by scanning the heap file at Open), a buffer pool between the
// directory and the device, and a store-wide LSN stamped into every
// page it mutates. All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dev    Device
	bp     *pool
	dir    map[string]rid
	fsm    freeSpaceMap
	lsn    int64
	health Health
	opts   Options
	closed bool
}

// Open scans every page of the device, verifying checksums and
// rebuilding the key directory and free-space map. Torn pages are
// counted, reformatted empty and written back (repair of their content
// is the reconcile pass's job, not Open's).
func Open(dev Device, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 32
	}
	s := &Store{
		dev:  dev,
		bp:   newPool(dev, opts.PoolPages, opts.Barrier, opts.Inject, opts.Metrics),
		dir:  make(map[string]rid),
		opts: opts,
	}
	n, err := dev.Pages()
	if err != nil {
		return nil, err
	}
	s.health.Pages = n
	repaired := false
	buf := make([]byte, PageSize)
	for id := 0; id < n; id++ {
		if err := dev.ReadPage(PageID(id), buf); err != nil {
			return nil, err
		}
		opts.Metrics.Inc(metrics.StorePageReads)
		p, err := DecodePage(buf)
		if err != nil {
			// Torn or corrupt: reformat empty in place so the page is
			// readable again, and surface the loss via Health.
			s.health.TornDetected++
			opts.Metrics.Inc(metrics.StoreTornDetected)
			p = NewPage()
			if err := dev.WritePage(PageID(id), p.Buf()); err != nil {
				return nil, err
			}
			opts.Metrics.Inc(metrics.StorePageWrites)
			s.health.TornRepaired++
			opts.Metrics.Inc(metrics.StoreTornRepaired)
			repaired = true
			s.fsm.set(PageID(id), p.FreeFor())
			continue
		}
		if p.LSN() > s.lsn {
			s.lsn = p.LSN()
		}
		var dup error
		p.Range(func(slot int, key string, value int64) bool {
			if _, exists := s.dir[key]; exists {
				dup = fmt.Errorf("store: duplicate key %q on page %d", key, id)
				return false
			}
			s.dir[key] = rid{page: PageID(id), slot: slot}
			return true
		})
		if dup != nil {
			return nil, dup
		}
		s.fsm.set(PageID(id), p.FreeFor())
		buf = make([]byte, PageSize) // DecodePage retained the old buf
	}
	if repaired {
		if err := dev.Sync(); err != nil {
			return nil, err
		}
		opts.Metrics.Inc(metrics.StorePageFsyncs)
	}
	return s, nil
}

// OpenFile opens (or creates) a file-backed store at path.
func OpenFile(path string, opts Options) (*Store, error) {
	dev, err := OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	st, err := Open(dev, opts)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return st, nil
}

// OpenMem returns an empty memory-backed store — the zero-setup
// default when durability is off.
func OpenMem(opts Options) *Store {
	st, err := Open(NewMemDevice(), opts)
	if err != nil {
		// An empty MemDevice cannot fail to open.
		panic(err)
	}
	return st
}

// Health reports what Open found.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// LSN returns the store-wide mutation sequence number.
func (s *Store) LSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// Len returns the live record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dir)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok, err := s.getLocked(key)
	if err != nil {
		// Read path errors (unreadable page under a live directory
		// entry) indicate corruption past Open; surface as absence.
		return 0, false
	}
	return v, ok
}

func (s *Store) getLocked(key string) (int64, bool, error) {
	r, ok := s.dir[key]
	if !ok {
		return 0, false, nil
	}
	p, err := s.bp.fetch(r.page)
	if err != nil {
		return 0, false, err
	}
	defer s.bp.unpin(r.page, false)
	k, v, ok := p.Record(r.slot)
	if !ok || k != key {
		return 0, false, fmt.Errorf("store: directory entry for %q points at wrong record", key)
	}
	return v, true, nil
}

// Put inserts or updates a record.
func (s *Store) Put(key string, value int64) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1,%d]", len(key), MaxKeyLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putLocked(key, value); err != nil {
		return err
	}
	if s.opts.FlushEach {
		_, err := s.flushLocked()
		return err
	}
	return nil
}

func (s *Store) putLocked(key string, value int64) error {
	s.lsn++
	if r, ok := s.dir[key]; ok {
		p, err := s.bp.fetch(r.page)
		if err != nil {
			return err
		}
		if err := p.Update(r.slot, value); err != nil {
			s.bp.unpin(r.page, false)
			return err
		}
		p.SetLSN(s.lsn)
		return s.bp.unpin(r.page, true)
	}
	need := cellOverhead + len(key)
	if id, ok := s.fsm.pageFor(need); ok {
		p, err := s.bp.fetch(id)
		if err != nil {
			return err
		}
		slot, ok := p.Insert(key, value)
		if !ok {
			s.bp.unpin(id, false)
			return fmt.Errorf("store: free-space map promised %d bytes on page %d but insert failed", s.fsm.get(id), id)
		}
		p.SetLSN(s.lsn)
		s.dir[key] = rid{page: id, slot: slot}
		s.fsm.set(id, p.FreeFor())
		return s.bp.unpin(id, true)
	}
	// Grow the heap file by one page.
	s.bp.fire(PointAlloc)
	id := PageID(s.fsm.pages())
	p := NewPage()
	slot, ok := p.Insert(key, value)
	if !ok {
		return fmt.Errorf("store: record %q does not fit an empty page", key)
	}
	p.SetLSN(s.lsn)
	if err := s.bp.fetchNew(id, p); err != nil {
		return err
	}
	s.opts.Metrics.Inc(metrics.StoreAllocs)
	s.dir[key] = rid{page: id, slot: slot}
	s.fsm.set(id, p.FreeFor())
	s.health.Pages = s.fsm.pages()
	return s.bp.unpin(id, true)
}

// Delete removes a record; deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.dir[key]
	if !ok {
		return nil
	}
	p, err := s.bp.fetch(r.page)
	if err != nil {
		return err
	}
	s.lsn++
	p.Delete(r.slot)
	p.SetLSN(s.lsn)
	delete(s.dir, key)
	s.fsm.set(r.page, p.FreeFor())
	if err := s.bp.unpin(r.page, true); err != nil {
		return err
	}
	if s.opts.FlushEach {
		_, err := s.flushLocked()
		return err
	}
	return nil
}

// Scan calls fn for every key with the given prefix, in sorted key
// order, until fn returns false.
func (s *Store) Scan(prefix string, fn func(key string, value int64) bool) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.dir))
	for k := range s.dir {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		v, _, err := s.getLocked(k)
		if err != nil {
			s.mu.Unlock()
			return
		}
		vals[i] = v
	}
	s.mu.Unlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return
		}
	}
}

// Keys returns the sorted keys with the given prefix.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.dir {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Flush writes back every dirty page and fsyncs the device. Returns
// the number of pages written.
func (s *Store) Flush() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() (int, error) {
	wrote, err := s.bp.flush()
	if wrote > 0 {
		s.opts.Metrics.Observe(metrics.HistStoreFlushPages, int64(wrote))
	}
	return wrote, err
}

// Close flushes and closes the device.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if _, err := s.flushLocked(); err != nil {
		s.dev.Close()
		return err
	}
	return s.dev.Close()
}

// Abandon closes the device WITHOUT flushing dirty pages — the
// crash-simulation close: whatever the buffer pool still held is lost,
// exactly as if the process died. Torture harnesses use it before
// reopening the same file for recovery.
func (s *Store) Abandon() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.dev.Close()
}

// VerifyDisk reads every device page and verifies its checksum,
// returning the number of pages checked. Any torn page is an error —
// after a Flush, a healthy store has none.
func (s *Store) VerifyDisk() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.dev.Pages()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, PageSize)
	for id := 0; id < n; id++ {
		if err := s.dev.ReadPage(PageID(id), buf); err != nil {
			return id, err
		}
		if _, err := DecodePage(buf); err != nil {
			return id, fmt.Errorf("store: page %d: %w", id, err)
		}
		buf = make([]byte, PageSize)
	}
	return n, nil
}

// CanonicalBytes serializes the records under the given prefixes (all
// records when none is given) into a deterministic sequence of freshly
// packed pages: sorted keys, first-fit fill, LSN 0. Two stores hold
// the same logical image iff their canonical bytes are equal — the
// torture battery compares a recovered store against a sequential
// oracle replay this way.
func (s *Store) CanonicalBytes(prefixes ...string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.dir {
		if len(prefixes) == 0 {
			keys = append(keys, k)
			continue
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(k, pre) {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Strings(keys)
	var out []byte
	page := NewPage()
	for _, k := range keys {
		v, ok, err := s.getLocked(k)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("store: directory key %q vanished", k)
		}
		if _, fit := page.Insert(k, v); !fit {
			page.Seal()
			out = append(out, page.Buf()...)
			page = NewPage()
			if _, fit := page.Insert(k, v); !fit {
				return nil, fmt.Errorf("store: record %q does not fit an empty page", k)
			}
		}
	}
	if page.Live() > 0 {
		page.Seal()
		out = append(out, page.Buf()...)
	}
	return out, nil
}

// CheckConsistency cross-checks the in-memory directory and free-space
// map against the actual pages: every directory entry resolves to a
// live record with the right key, every live record is in the
// directory, and every page's tracked free space matches Page.FreeFor.
func (s *Store) CheckConsistency() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := 0
	for id := 0; id < s.fsm.pages(); id++ {
		p, err := s.bp.fetch(PageID(id))
		if err != nil {
			return fmt.Errorf("store: consistency fetch page %d: %w", id, err)
		}
		var bad error
		p.Range(func(slot int, key string, value int64) bool {
			seen++
			r, ok := s.dir[key]
			if !ok {
				bad = fmt.Errorf("store: record %q on page %d not in directory", key, id)
				return false
			}
			if r.page != PageID(id) || r.slot != slot {
				bad = fmt.Errorf("store: directory maps %q to (%d,%d), record lives at (%d,%d)", key, r.page, r.slot, id, slot)
				return false
			}
			return true
		})
		if bad == nil && s.fsm.get(PageID(id)) != p.FreeFor() {
			bad = fmt.Errorf("store: free-space map says %d for page %d, page says %d", s.fsm.get(PageID(id)), id, p.FreeFor())
		}
		s.bp.unpin(PageID(id), false)
		if bad != nil {
			return bad
		}
	}
	if seen != len(s.dir) {
		return fmt.Errorf("store: %d live records on pages, %d directory entries", seen, len(s.dir))
	}
	return nil
}
