package store

import (
	"fmt"

	"transproc/internal/metrics"
)

// frame is one buffer-pool slot: a resident page image plus its
// replacement state.
type frame struct {
	id     PageID
	page   *Page
	pin    int
	dirty  bool
	ref    bool // clock reference bit
	inUse  bool
	newest bool // freshly allocated page, not yet on the device
}

// pool is a fixed-size buffer pool with pin counts, dirty tracking and
// clock eviction. It honors the write-ahead rule: before any dirty
// page reaches the device, barrier() (the scheduler WAL's sync) runs
// first, so no page image can describe effects the log has not made
// durable. The pool is not self-locking — the owning Store serializes
// access.
type pool struct {
	dev     Device
	frames  []frame
	table   map[PageID]int
	hand    int
	barrier func() error
	inject  func(string)
	m       *metrics.Registry
}

func newPool(dev Device, size int, barrier func() error, inject func(string), m *metrics.Registry) *pool {
	if size < 1 {
		size = 1
	}
	return &pool{
		dev:     dev,
		frames:  make([]frame, size),
		table:   make(map[PageID]int, size),
		barrier: barrier,
		inject:  inject,
		m:       m,
	}
}

func (bp *pool) fire(point string) {
	if bp.inject != nil {
		bp.inject(point)
	}
}

// fetch pins page id, reading it from the device on a miss. The
// returned page stays resident until the matching unpin.
func (bp *pool) fetch(id PageID) (*Page, error) {
	if fi, ok := bp.table[id]; ok {
		f := &bp.frames[fi]
		f.pin++
		f.ref = true
		bp.m.Inc(metrics.StorePoolHits)
		return f.page, nil
	}
	bp.m.Inc(metrics.StorePoolMisses)
	fi, err := bp.victim()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, PageSize)
	if err := bp.dev.ReadPage(id, buf); err != nil {
		return nil, err
	}
	bp.m.Inc(metrics.StorePageReads)
	p, err := DecodePage(buf)
	if err != nil {
		return nil, fmt.Errorf("store: page %d unreadable: %w", id, err)
	}
	bp.install(fi, id, p, false)
	return p, nil
}

// fetchNew pins a freshly formatted page that does not exist on the
// device yet; it reaches the device on first write-back.
func (bp *pool) fetchNew(id PageID, p *Page) error {
	fi, err := bp.victim()
	if err != nil {
		return err
	}
	bp.install(fi, id, p, true)
	bp.frames[fi].dirty = true
	return nil
}

func (bp *pool) install(fi int, id PageID, p *Page, fresh bool) {
	f := &bp.frames[fi]
	*f = frame{id: id, page: p, pin: 1, ref: true, inUse: true, newest: fresh}
	bp.table[id] = fi
}

// unpin releases one pin, marking the frame dirty if the caller
// mutated the page.
func (bp *pool) unpin(id PageID, dirty bool) error {
	fi, ok := bp.table[id]
	if !ok {
		return fmt.Errorf("store: unpin of non-resident page %d", id)
	}
	f := &bp.frames[fi]
	if f.pin <= 0 {
		return fmt.Errorf("store: unpin of unpinned page %d", id)
	}
	f.pin--
	if dirty {
		f.dirty = true
	}
	return nil
}

// pinCount reports the current pin count of a resident page (0 when
// not resident). Test hook for the pin/unpin invariants.
func (bp *pool) pinCount(id PageID) int {
	if fi, ok := bp.table[id]; ok {
		return bp.frames[fi].pin
	}
	return 0
}

// victim returns a free frame index, evicting an unpinned resident
// page (clock; dirty victims are written back under the write-ahead
// barrier) when the pool is full.
func (bp *pool) victim() (int, error) {
	for i := range bp.frames {
		if !bp.frames[i].inUse {
			return i, nil
		}
	}
	// Clock sweep: two full passes clear every reference bit, so only
	// an all-pinned pool fails.
	for sweep := 0; sweep < 2*len(bp.frames); sweep++ {
		f := &bp.frames[bp.hand]
		fi := bp.hand
		bp.hand = (bp.hand + 1) % len(bp.frames)
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			bp.fire(PointEvict)
			if err := bp.writeBack(f); err != nil {
				return 0, err
			}
		}
		bp.m.Inc(metrics.StoreEvictions)
		delete(bp.table, f.id)
		*f = frame{}
		return fi, nil
	}
	return 0, fmt.Errorf("store: buffer pool exhausted (%d frames, all pinned)", len(bp.frames))
}

// writeBack seals and writes one dirty frame. The WAL barrier runs
// first (write-ahead rule); the device write is not fsynced here —
// flush's single Sync (or the OS, for evictions) makes it durable, and
// the page checksum catches any tear in between.
func (bp *pool) writeBack(f *frame) error {
	if bp.barrier != nil {
		if err := bp.barrier(); err != nil {
			return fmt.Errorf("store: write-ahead barrier: %w", err)
		}
	}
	f.page.Seal()
	bp.fire(PointPageWrite)
	if err := bp.dev.WritePage(f.id, f.page.Buf()); err != nil {
		return err
	}
	bp.m.Inc(metrics.StorePageWrites)
	f.dirty = false
	f.newest = false
	return nil
}

// flush writes back every dirty frame and fsyncs the device. It
// returns the number of pages written.
func (bp *pool) flush() (int, error) {
	wrote := 0
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.inUse || !f.dirty {
			continue
		}
		if err := bp.writeBack(f); err != nil {
			return wrote, err
		}
		wrote++
	}
	if wrote > 0 {
		bp.fire(PointPageFsync)
		if err := bp.dev.Sync(); err != nil {
			return wrote, err
		}
		bp.m.Inc(metrics.StorePageFsyncs)
	}
	return wrote, nil
}

// dirtyPages counts dirty resident frames. Test hook.
func (bp *pool) dirtyPages() int {
	n := 0
	for i := range bp.frames {
		if bp.frames[i].inUse && bp.frames[i].dirty {
			n++
		}
	}
	return n
}
