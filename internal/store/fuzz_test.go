package store

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// FuzzHeapPageDecode throws arbitrary bytes at DecodePage. Raw garbage
// must be rejected cleanly (almost always by checksum); to also reach
// the structural validation, the harness reseals the image — a valid
// checksum over hostile structure — and requires decode to either
// reject it or yield a page that iterates and round-trips safely.
func FuzzHeapPageDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, PageSize))
	f.Add(pageImage(1, 40))
	f.Add(pageImage(2, 1))
	trunc := pageImage(3, 10)
	f.Add(trunc[:100])
	// Hostile slot directory: offsets past the page end.
	hostile := NewPage()
	hostile.setSlotCount(3)
	hostile.setSlot(0, PageSize-4, 40)
	hostile.setSlot(1, 0, 12)
	hostile.setCellStart(headerSize)
	hostile.Seal()
	f.Add(hostile.Buf())

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodePage(append([]byte(nil), data...)); err == nil {
			records(p) // must not panic
		}
		if len(data) != PageSize {
			return
		}
		img := append([]byte(nil), data...)
		binary.BigEndian.PutUint32(img[0:4], 0)
		(&Page{buf: img}).Seal()
		p, err := DecodePage(img)
		if err != nil {
			return
		}
		// Structurally accepted: every operation must stay in bounds
		// and the page must survive a mutate/seal/decode round trip.
		recs := records(p)
		if _, ok := p.Insert("fuzz/extra", 1); ok {
			if got := records(p); len(got) != len(recs)+1 {
				t.Fatalf("insert changed record count %d -> %d", len(recs), len(got))
			}
		}
		p.Compact()
		p.Seal()
		q, err := DecodePage(p.Buf())
		if err != nil {
			t.Fatalf("page invalid after compact+seal: %v", err)
		}
		records(q)
	})
}

// FuzzFreeSpaceMap interprets fuzz bytes as an insert/delete/update
// program against a real store and asserts the free-space map,
// directory and pages never drift (CheckConsistency), with a model map
// double-checking every surviving value.
func FuzzFreeSpaceMap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x42, 0x81, 0x42, 0x01, 0x43})
	prog := make([]byte, 0, 256)
	for i := 0; i < 128; i++ {
		prog = append(prog, byte(i), byte(i*3))
	}
	f.Add(prog)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Open(NewMemDevice(), Options{PoolPages: 2})
		if err != nil {
			t.Fatal(err)
		}
		model := make(map[string]int64)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			key := fmt.Sprintf("k/%03d", arg)
			if op&0x80 != 0 {
				if err := st.Delete(key); err != nil {
					t.Fatalf("delete %q: %v", key, err)
				}
				delete(model, key)
				continue
			}
			v := int64(op)<<8 | int64(arg)
			if err := st.Put(key, v); err != nil {
				t.Fatalf("put %q: %v", key, err)
			}
			model[key] = v
		}
		if err := st.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		if st.Len() != len(model) {
			t.Fatalf("store %d records, model %d", st.Len(), len(model))
		}
		for k, want := range model {
			if got, ok := st.Get(k); !ok || got != want {
				t.Fatalf("%q = (%d,%v), want (%d,true)", k, got, ok, want)
			}
		}
	})
}
