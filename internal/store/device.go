package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Device is a page-addressed backing file: fixed-size page reads and
// writes plus an explicit durability barrier. Implementations must be
// safe for concurrent use.
type Device interface {
	// ReadPage fills buf (PageSize bytes) with page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id, growing the device if id is
	// the next page. The write is not durable until Sync.
	WritePage(id PageID, buf []byte) error
	// Sync makes all completed writes durable.
	Sync() error
	// Pages returns the current page count.
	Pages() (int, error)
	// Close releases the device. Implementations do not flush.
	Close() error
}

// PageID addresses a page within a device.
type PageID uint32

// FileDevice is a Device over a single heap file. Pages are written
// with WriteAt at page-aligned offsets; Sync fsyncs the file. A crash
// between WritePage and Sync can tear a page — DecodePage's checksum
// catches that on the next read.
type FileDevice struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileDevice opens (or creates) a heap file. On creation the
// parent directory is fsynced so the file itself survives a crash.
func OpenFileDevice(path string) (*FileDevice, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		if dir, err := os.Open(filepath.Dir(path)); err == nil {
			_ = dir.Sync()
			_ = dir.Close()
		}
	}
	sz, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if sz%PageSize != 0 {
		// A crash mid-append can leave a partial trailing page; treat
		// the fragment as a torn final page by padding to a page
		// boundary (the checksum will fail and Open will repair it).
		if err := f.Truncate((sz/PageSize + 1) * PageSize); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FileDevice{f: f}, nil
}

// Path returns the backing file path.
func (d *FileDevice) Path() string { return d.f.Name() }

func (d *FileDevice) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.f.ReadAt(buf, int64(id)*PageSize)
	return err
}

func (d *FileDevice) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("store: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

func (d *FileDevice) Pages() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sz, err := d.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	return int(sz / PageSize), nil
}

func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// MemDevice is an in-memory Device: the zero-setup default backing for
// subsystems when durability is off, and the oracle target in tests.
type MemDevice struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

func (d *MemDevice) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("store: read of unallocated page %d (have %d)", id, len(d.pages))
	}
	copy(buf, d.pages[id])
	return nil
}

func (d *MemDevice) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for int(id) >= len(d.pages) {
		d.pages = append(d.pages, make([]byte, PageSize))
	}
	copy(d.pages[id], buf)
	return nil
}

func (d *MemDevice) Sync() error { return nil }

func (d *MemDevice) Pages() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages), nil
}

func (d *MemDevice) Close() error { return nil }

// Corrupt flips a byte inside a page, simulating a torn write. Test
// harness hook; no-op for out-of-range pages.
func (d *MemDevice) Corrupt(id PageID, off int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) < len(d.pages) && off >= 0 && off < PageSize {
		d.pages[id][off] ^= 0xff
	}
}
