package store

// freeSpaceMap tracks, per heap page, the bytes available to a future
// insert (as reported by Page.FreeFor). It is rebuilt from a full page
// scan at Open and maintained incrementally by every mutation; Store
// CheckConsistency verifies the two never drift.
type freeSpaceMap struct {
	free []int
}

// set records the free bytes of a page, growing the map as the heap
// file grows.
func (m *freeSpaceMap) set(id PageID, free int) {
	for int(id) >= len(m.free) {
		m.free = append(m.free, 0)
	}
	m.free[id] = free
}

// get returns the tracked free bytes of a page (0 when untracked).
func (m *freeSpaceMap) get(id PageID) int {
	if int(id) >= len(m.free) {
		return 0
	}
	return m.free[id]
}

// pageFor returns the first page with at least need free bytes.
// First-fit keeps placement deterministic, which CanonicalBytes and
// the torture oracle rely on.
func (m *freeSpaceMap) pageFor(need int) (PageID, bool) {
	for id, free := range m.free {
		if free >= need {
			return PageID(id), true
		}
	}
	return 0, false
}

// pages returns the tracked page count.
func (m *freeSpaceMap) pages() int { return len(m.free) }
