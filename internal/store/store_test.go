package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"transproc/internal/metrics"
)

func newTestRegistry() *metrics.Registry { return metrics.New() }

func evictions(reg *metrics.Registry) int64 { return reg.Counter(metrics.StoreEvictions) }

func TestPageInsertGetUpdateDelete(t *testing.T) {
	t.Parallel()
	p := NewPage()
	slot, ok := p.Insert("alpha", 41)
	if !ok {
		t.Fatal("insert failed on empty page")
	}
	if err := p.Update(slot, 42); err != nil {
		t.Fatal(err)
	}
	k, v, ok := p.Record(slot)
	if !ok || k != "alpha" || v != 42 {
		t.Fatalf("got (%q,%d,%v), want (alpha,42,true)", k, v, ok)
	}
	p.Delete(slot)
	if _, _, ok := p.Record(slot); ok {
		t.Fatal("record survived delete")
	}
	if p.Live() != 0 {
		t.Fatalf("live=%d after delete", p.Live())
	}
}

func TestPageFillCompactRefill(t *testing.T) {
	t.Parallel()
	p := NewPage()
	var slots []int
	for i := 0; ; i++ {
		slot, ok := p.Insert(fmt.Sprintf("key-%04d", i), int64(i))
		if !ok {
			break
		}
		slots = append(slots, slot)
	}
	if len(slots) < 100 {
		t.Fatalf("only %d records fit a page", len(slots))
	}
	// Delete every other record, then refill: compaction must reclaim
	// the dead cell space.
	freed := 0
	for i, slot := range slots {
		if i%2 == 0 {
			p.Delete(slot)
			freed++
		}
	}
	refilled := 0
	for i := 0; ; i++ {
		if _, ok := p.Insert(fmt.Sprintf("re-%05d", i), int64(i)); !ok {
			break
		}
		refilled++
	}
	if refilled < freed-2 {
		t.Fatalf("freed %d records but only refilled %d", freed, refilled)
	}
}

func TestPageSealDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	p := NewPage()
	p.SetLSN(77)
	p.Insert("a", 1)
	p.Insert("b", 2)
	p.Seal()
	q, err := DecodePage(append([]byte(nil), p.Buf()...))
	if err != nil {
		t.Fatal(err)
	}
	if q.LSN() != 77 || q.Live() != 2 {
		t.Fatalf("decoded lsn=%d live=%d", q.LSN(), q.Live())
	}
	// Any single flipped byte must fail the checksum.
	for _, off := range []int{0, 5, headerSize, PageSize - 1} {
		img := append([]byte(nil), p.Buf()...)
		img[off] ^= 0xff
		if _, err := DecodePage(img); err == nil {
			t.Fatalf("decode accepted image with byte %d flipped", off)
		}
	}
}

func TestStoreBasicAndReopen(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "heap.db")
	st, err := OpenFile(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("item/%04d", i), int64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 7 {
		if err := st.Delete(fmt.Sprintf("item/%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	want, err := st.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFile(path, Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if h := st2.Health(); h.TornDetected != 0 {
		t.Fatalf("clean reopen found %d torn pages", h.TornDetected)
	}
	for i := 0; i < n; i++ {
		v, ok := st2.Get(fmt.Sprintf("item/%04d", i))
		if i%7 == 0 {
			if ok {
				t.Fatalf("deleted item/%04d resurrected with %d", i, v)
			}
			continue
		}
		if !ok || v != int64(i)*3 {
			t.Fatalf("item/%04d = (%d,%v), want (%d,true)", i, v, ok, i*3)
		}
	}
	got, err := st2.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("canonical bytes changed across clean reopen")
	}
	if err := st2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornPageDetectedAndRepaired(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "heap.db")
	st, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := st.Put(fmt.Sprintf("rec/%04d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the middle of page 1: overwrite half the page with junk.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xde}, PageSize/2)
	if _, err := f.WriteAt(junk, PageSize+PageSize/4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h := st2.Health()
	if h.TornDetected != 1 || h.TornRepaired != 1 {
		t.Fatalf("health = %+v, want 1 torn detected and repaired", h)
	}
	if _, err := st2.VerifyDisk(); err != nil {
		t.Fatalf("repaired store still has torn pages: %v", err)
	}
	if err := st2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Survivors on other pages are intact.
	if _, ok := st2.Get("rec/0000"); !ok {
		t.Fatal("record on healthy page 0 lost")
	}
}

func TestStorePartialTrailingPageTreatedAsTorn(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "heap.db")
	st, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := st.Put(fmt.Sprintf("rec/%04d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// A crash mid-append leaves a fragment of the last page.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-PageSize/3); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if h := st2.Health(); h.TornDetected != 1 {
		t.Fatalf("health = %+v, want exactly the truncated tail page torn", h)
	}
	if _, err := st2.VerifyDisk(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreEvictionUnderTinyPool(t *testing.T) {
	t.Parallel()
	reg := newTestRegistry()
	st, err := Open(NewMemDevice(), Options{PoolPages: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := st.Put(fmt.Sprintf("key/%05d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := st.Get(fmt.Sprintf("key/%05d", i)); !ok || v != int64(i) {
			t.Fatalf("key/%05d = (%d,%v)", i, v, ok)
		}
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := evictions(reg); got == 0 {
		t.Fatal("tiny pool recorded zero evictions")
	}
}

func TestStoreBarrierRunsBeforePageWrites(t *testing.T) {
	t.Parallel()
	dev := NewMemDevice()
	writes, barriers := 0, 0
	var st *Store
	var err error
	st, err = Open(dev, Options{
		PoolPages: 2,
		Barrier: func() error {
			// Write-ahead rule: at each barrier call, no page write may
			// have happened since the last barrier.
			if writes != 0 {
				t.Errorf("page write preceded WAL barrier")
			}
			barriers++
			writes = 0
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := st.Put(fmt.Sprintf("key/%05d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if barriers == 0 {
		t.Fatal("no barrier calls despite dirty page writes")
	}
}

func TestPoolPinUnpinInvariants(t *testing.T) {
	t.Parallel()
	st, err := Open(NewMemDevice(), Options{PoolPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	bp := st.bp
	if _, err := bp.fetch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.fetch(0); err != nil {
		t.Fatal(err)
	}
	if got := bp.pinCount(0); got != 2 {
		t.Fatalf("pin count %d after two fetches", got)
	}
	if err := bp.unpin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.unpin(0, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.unpin(0, false); err == nil {
		t.Fatal("unpin below zero accepted")
	}
	if err := bp.unpin(99, false); err == nil {
		t.Fatal("unpin of non-resident page accepted")
	}
}

func TestPoolAllPinnedExhausts(t *testing.T) {
	t.Parallel()
	st, err := Open(NewMemDevice(), Options{PoolPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.bp.fetch(0); err != nil {
		t.Fatal(err)
	}
	// The only frame is pinned: a miss must fail, not evict it.
	if _, err := st.bp.victim(); err == nil {
		t.Fatal("victim selection evicted a pinned frame")
	}
	if err := st.bp.unpin(0, false); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentAccess exercises pin/unpin and eviction from many
// goroutines; meaningful under -race.
func TestStoreConcurrentAccess(t *testing.T) {
	t.Parallel()
	st, err := Open(NewMemDevice(), Options{PoolPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const opsPerWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				key := fmt.Sprintf("key/%03d", rng.Intn(300))
				switch rng.Intn(3) {
				case 0:
					if err := st.Put(key, int64(i)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					st.Get(key)
				case 2:
					if err := st.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalBytesIndependentOfHistory(t *testing.T) {
	t.Parallel()
	// Same logical content through different mutation histories (and
	// different pool sizes) must serialize identically.
	a, _ := Open(NewMemDevice(), Options{PoolPages: 2})
	b, _ := Open(NewMemDevice(), Options{PoolPages: 16})
	for i := 0; i < 300; i++ {
		if err := a.Put(fmt.Sprintf("k/%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 3 {
		if err := a.Delete(fmt.Sprintf("k/%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 299; i >= 0; i-- {
		if i%3 == 0 {
			continue
		}
		if err := b.Put(fmt.Sprintf("k/%03d", i), -1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			continue
		}
		if err := b.Put(fmt.Sprintf("k/%03d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ca, err := a.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatal("canonical bytes differ for identical logical content")
	}
	// Prefix filtering selects subsets deterministically.
	a.Put("x/1", 7)
	onlyK, err := a.CanonicalBytes("k/")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onlyK, cb) {
		t.Fatal("prefix-filtered canonical bytes include foreign records")
	}
}

func TestStoreFlushEach(t *testing.T) {
	t.Parallel()
	dev := NewMemDevice()
	st, err := Open(dev, Options{PoolPages: 4, FlushEach: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := st.Put(fmt.Sprintf("k/%02d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
		if d := st.bp.dirtyPages(); d != 0 {
			t.Fatalf("%d dirty pages after FlushEach put", d)
		}
	}
}
