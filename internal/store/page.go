// Package store is the durable storage engine under the simulated
// subsystems: slotted heap pages with per-page checksums and LSNs, a
// page device with atomic full-page writes (write → fsync; torn-page
// detection via checksum on read), a free-space map, and a small
// buffer pool with pin counts, dirty tracking and clock eviction that
// honors a write-ahead rule against the scheduler's WAL. On top of the
// pages it exposes a string→int64 record store — exactly the shape of
// a simulated resource manager's data items — so subsystem-local ACID
// state survives a crash and composes with the process-level WAL into
// end-to-end recovery (ROADMAP item 4).
//
// The package is a leaf: it depends only on internal/metrics. Crash
// points ("store:page-write", "store:page-fsync", "store:evict",
// "store:alloc") are fired through an injected hook and re-exported by
// internal/fault for the torture battery.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// PageSize is the fixed on-disk page size. Every device read and
	// write moves exactly one page.
	PageSize = 4096
	// headerSize is the page header: checksum (4), pageLSN (8),
	// slotCount (2), cellStart (2), reserved (8).
	headerSize = 24
	// slotSize is one slot-directory entry: cell offset and length.
	slotSize = 4
	// cellOverhead is the per-record framing inside a cell: key length
	// (2) plus the fixed-size int64 value (8).
	cellOverhead = 10
	// MaxKeyLen bounds record keys so a record always fits a page.
	MaxKeyLen = 1024
)

// Crash point names fired through Options.Inject (re-exported by
// internal/fault).
const (
	// PointPageWrite fires immediately before a page image is handed to
	// the device: a crash here loses the write entirely.
	PointPageWrite = "store:page-write"
	// PointPageFsync fires between the device writes of a flush and
	// their fsync: a crash here leaves the writes in the OS cache.
	PointPageFsync = "store:page-fsync"
	// PointEvict fires when the buffer pool is about to evict a dirty
	// victim to make room.
	PointEvict = "store:evict"
	// PointAlloc fires when the heap file is about to grow by a page.
	PointAlloc = "store:alloc"
)

// ErrTornPage marks a page whose checksum does not cover its bytes — a
// torn or corrupted write.
var ErrTornPage = errors.New("store: torn page (checksum mismatch)")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Page is one slotted heap page: a header, a slot directory growing up
// from the header, and cells growing down from the end. Records are
// (key, int64) pairs; dead slots (length 0) are reused and their cell
// space reclaimed by in-place compaction.
type Page struct {
	buf []byte
}

// NewPage returns a freshly formatted empty page.
func NewPage() *Page {
	p := &Page{buf: make([]byte, PageSize)}
	p.format(0)
	return p
}

// PageFromBuf wraps an existing PageSize buffer without validating it;
// the caller owns the buffer. Used by the buffer pool for resident
// frames that were already verified on read.
func PageFromBuf(buf []byte) *Page { return &Page{buf: buf} }

// DecodePage validates a raw page image: exact size, checksum, and
// structural bounds of every live slot. It returns ErrTornPage on a
// checksum mismatch and a descriptive error on structural corruption
// (possible only if corruption collides with the checksum).
func DecodePage(data []byte) (*Page, error) {
	if len(data) != PageSize {
		return nil, fmt.Errorf("store: page image is %d bytes, want %d", len(data), PageSize)
	}
	p := &Page{buf: data}
	if stored := binary.BigEndian.Uint32(data[0:4]); stored != p.computeChecksum() {
		return nil, ErrTornPage
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate bounds-checks the slot directory and cells.
func (p *Page) validate() error {
	n := p.SlotCount()
	dirEnd := headerSize + slotSize*n
	cs := p.cellStart()
	if dirEnd > PageSize || cs < dirEnd || cs > PageSize {
		return fmt.Errorf("store: page structure out of bounds (slots %d, cellStart %d)", n, cs)
	}
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if length == 0 {
			continue
		}
		if off < dirEnd || off+length > PageSize || length < cellOverhead {
			return fmt.Errorf("store: slot %d cell out of bounds (off %d, len %d)", i, off, length)
		}
		keyLen := int(binary.BigEndian.Uint16(p.buf[off : off+2]))
		if keyLen != length-cellOverhead || keyLen > MaxKeyLen {
			return fmt.Errorf("store: slot %d key length %d inconsistent with cell length %d", i, keyLen, length)
		}
	}
	return nil
}

// Buf returns the underlying page image. Seal before persisting it.
func (p *Page) Buf() []byte { return p.buf }

// format initializes an empty page with the given LSN.
func (p *Page) format(lsn int64) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.SetLSN(lsn)
	p.setSlotCount(0)
	p.setCellStart(PageSize)
	p.Seal()
}

// Seal computes and stores the checksum over everything after it.
func (p *Page) Seal() {
	binary.BigEndian.PutUint32(p.buf[0:4], p.computeChecksum())
}

func (p *Page) computeChecksum() uint32 {
	return crc32.Checksum(p.buf[4:], crcTable)
}

// LSN returns the page LSN: the store-wide mutation sequence number of
// the last change applied to this page.
func (p *Page) LSN() int64 { return int64(binary.BigEndian.Uint64(p.buf[4:12])) }

// SetLSN stamps the page LSN.
func (p *Page) SetLSN(lsn int64) { binary.BigEndian.PutUint64(p.buf[4:12], uint64(lsn)) }

// SlotCount returns the size of the slot directory (live and dead).
func (p *Page) SlotCount() int { return int(binary.BigEndian.Uint16(p.buf[12:14])) }

func (p *Page) setSlotCount(n int) { binary.BigEndian.PutUint16(p.buf[12:14], uint16(n)) }

func (p *Page) cellStart() int { return int(binary.BigEndian.Uint16(p.buf[14:16])) }

func (p *Page) setCellStart(off int) { binary.BigEndian.PutUint16(p.buf[14:16], uint16(off)) }

func (p *Page) slot(i int) (off, length int) {
	base := headerSize + slotSize*i
	return int(binary.BigEndian.Uint16(p.buf[base : base+2])),
		int(binary.BigEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p *Page) setSlot(i, off, length int) {
	base := headerSize + slotSize*i
	binary.BigEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// contiguousFree is the gap between the slot directory and the lowest
// cell.
func (p *Page) contiguousFree() int {
	return p.cellStart() - (headerSize + slotSize*p.SlotCount())
}

// deadSpace is the cell space held by dead slots, reclaimable by
// Compact.
func (p *Page) deadSpace() (bytes int, deadSlots int) {
	for i := 0; i < p.SlotCount(); i++ {
		if _, length := p.slot(i); length == 0 {
			deadSlots++
		}
	}
	live := 0
	for i := 0; i < p.SlotCount(); i++ {
		if _, length := p.slot(i); length > 0 {
			live += length
		}
	}
	return PageSize - p.cellStart() - live, deadSlots
}

// FreeFor reports the bytes available to a future insert after an
// in-place compaction: the contiguous gap plus dead cell space. A new
// record of key length k needs cellOverhead+k bytes plus (when no dead
// slot is reusable) slotSize for its directory entry.
func (p *Page) FreeFor() int {
	dead, deadSlots := p.deadSpace()
	free := p.contiguousFree() + dead
	if deadSlots == 0 {
		free -= slotSize
	}
	if free < 0 {
		return 0
	}
	return free
}

// CanFit reports whether a record with the given key length fits.
func (p *Page) CanFit(keyLen int) bool {
	need := cellOverhead + keyLen
	dead, deadSlots := p.deadSpace()
	avail := p.contiguousFree() + dead
	if deadSlots == 0 {
		avail -= slotSize
	}
	return avail >= need
}

// Insert adds a record and returns its slot; ok is false when the page
// cannot fit it even after compaction.
func (p *Page) Insert(key string, value int64) (slot int, ok bool) {
	if len(key) > MaxKeyLen {
		return 0, false
	}
	cellLen := cellOverhead + len(key)
	// Reuse a dead slot when available, else extend the directory.
	slot = -1
	for i := 0; i < p.SlotCount(); i++ {
		if _, length := p.slot(i); length == 0 {
			slot = i
			break
		}
	}
	needDir := 0
	if slot < 0 {
		needDir = slotSize
	}
	if p.contiguousFree() < cellLen+needDir {
		p.Compact()
		if p.contiguousFree() < cellLen+needDir {
			return 0, false
		}
	}
	if slot < 0 {
		slot = p.SlotCount()
		p.setSlotCount(slot + 1)
	}
	off := p.cellStart() - cellLen
	p.setCellStart(off)
	binary.BigEndian.PutUint16(p.buf[off:off+2], uint16(len(key)))
	copy(p.buf[off+2:], key)
	binary.BigEndian.PutUint64(p.buf[off+2+len(key):off+cellLen], uint64(value))
	p.setSlot(slot, off, cellLen)
	return slot, true
}

// Record returns the record in a slot; ok is false for dead or
// out-of-range slots.
func (p *Page) Record(slot int) (key string, value int64, ok bool) {
	if slot < 0 || slot >= p.SlotCount() {
		return "", 0, false
	}
	off, length := p.slot(slot)
	if length == 0 {
		return "", 0, false
	}
	keyLen := int(binary.BigEndian.Uint16(p.buf[off : off+2]))
	key = string(p.buf[off+2 : off+2+keyLen])
	value = int64(binary.BigEndian.Uint64(p.buf[off+2+keyLen : off+length]))
	return key, value, true
}

// Update overwrites the value of a live slot in place.
func (p *Page) Update(slot int, value int64) error {
	if slot < 0 || slot >= p.SlotCount() {
		return fmt.Errorf("store: update of out-of-range slot %d", slot)
	}
	off, length := p.slot(slot)
	if length == 0 {
		return fmt.Errorf("store: update of dead slot %d", slot)
	}
	binary.BigEndian.PutUint64(p.buf[off+length-8:off+length], uint64(value))
	return nil
}

// Delete kills a slot; its cell space is reclaimed by a later Compact.
func (p *Page) Delete(slot int) {
	if slot < 0 || slot >= p.SlotCount() {
		return
	}
	p.setSlot(slot, 0, 0)
	// Trim trailing dead slots so empty pages shrink back to zero.
	n := p.SlotCount()
	for n > 0 {
		if _, length := p.slot(n - 1); length != 0 {
			break
		}
		n--
	}
	p.setSlotCount(n)
	if n == 0 {
		p.setCellStart(PageSize)
	}
}

// Live returns the number of live records.
func (p *Page) Live() int {
	live := 0
	for i := 0; i < p.SlotCount(); i++ {
		if _, length := p.slot(i); length > 0 {
			live++
		}
	}
	return live
}

// Range calls fn for every live record until fn returns false.
func (p *Page) Range(fn func(slot int, key string, value int64) bool) {
	for i := 0; i < p.SlotCount(); i++ {
		if key, value, ok := p.Record(i); ok {
			if !fn(i, key, value) {
				return
			}
		}
	}
}

// Compact repacks live cells against the end of the page, preserving
// slot numbering, so dead cell space becomes contiguous free space.
func (p *Page) Compact() {
	type cell struct {
		slot int
		data []byte
	}
	var cells []cell
	for i := 0; i < p.SlotCount(); i++ {
		off, length := p.slot(i)
		if length == 0 {
			continue
		}
		d := make([]byte, length)
		copy(d, p.buf[off:off+length])
		cells = append(cells, cell{slot: i, data: d})
	}
	off := PageSize
	for _, c := range cells {
		off -= len(c.data)
		copy(p.buf[off:], c.data)
		p.setSlot(c.slot, off, len(c.data))
	}
	p.setCellStart(off)
	// Zero the reclaimed gap so page images stay deterministic.
	for i := headerSize + slotSize*p.SlotCount(); i < off; i++ {
		p.buf[i] = 0
	}
}
