package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// pageImage returns a sealed page holding n records derived from seed.
func pageImage(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := NewPage()
	p.SetLSN(seed)
	for i := 0; i < n; i++ {
		if _, ok := p.Insert(fmt.Sprintf("rec/%d/%04d", seed, i), rng.Int63n(1<<40)); !ok {
			break
		}
	}
	p.Seal()
	return p.Buf()
}

// records extracts the logical content of a decoded page.
func records(p *Page) map[string]int64 {
	out := make(map[string]int64)
	p.Range(func(_ int, k string, v int64) bool {
		out[k] = v
		return true
	})
	return out
}

// TestTornPageEveryBytePrefix mirrors the WAL torn-tail property at
// page granularity: a crash mid-page-write leaves a prefix of the new
// image over the old one. For every cut point, DecodePage must either
// reject the hybrid (checksum) or — when the hybrid happens to be
// byte-identical to the old or new image — decode exactly that page.
// No cut may yield a third, undetected state.
func TestTornPageEveryBytePrefix(t *testing.T) {
	t.Parallel()
	oldImg := pageImage(1, 60)
	newImg := pageImage(2, 90)
	oldP, err := DecodePage(append([]byte(nil), oldImg...))
	if err != nil {
		t.Fatal(err)
	}
	newP, err := DecodePage(append([]byte(nil), newImg...))
	if err != nil {
		t.Fatal(err)
	}
	oldRecs, newRecs := records(oldP), records(newP)

	sameMap := func(a, b map[string]int64) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}

	for cut := 0; cut <= PageSize; cut++ {
		hybrid := make([]byte, PageSize)
		copy(hybrid, newImg[:cut])
		copy(hybrid[cut:], oldImg[cut:])
		p, err := DecodePage(hybrid)
		if err != nil {
			continue // torn write detected — the common, correct case
		}
		got := records(p)
		if bytes.Equal(hybrid, oldImg) && sameMap(got, oldRecs) {
			continue // write had not started yet
		}
		if bytes.Equal(hybrid, newImg) && sameMap(got, newRecs) {
			continue // write had already completed
		}
		t.Fatalf("cut %d: hybrid page accepted with %d records (old %d, new %d)",
			cut, len(got), len(oldRecs), len(newRecs))
	}
}

// TestFreeSpaceMapConsistencyRandomOps drives seeded random
// insert/delete/update sequences and asserts the free-space map and
// directory never drift from the actual pages.
func TestFreeSpaceMapConsistencyRandomOps(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 7, 42, 1999}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			st, err := Open(NewMemDevice(), Options{PoolPages: 3})
			if err != nil {
				t.Fatal(err)
			}
			live := make(map[string]int64)
			for i := 0; i < 3000; i++ {
				key := fmt.Sprintf("k/%03d", rng.Intn(500))
				switch rng.Intn(5) {
				case 0:
					if err := st.Delete(key); err != nil {
						t.Fatalf("op %d delete %q: %v", i, key, err)
					}
					delete(live, key)
				default:
					v := rng.Int63n(1 << 30)
					if err := st.Put(key, v); err != nil {
						t.Fatalf("op %d put %q: %v", i, key, err)
					}
					live[key] = v
				}
				if i%500 == 499 {
					if err := st.CheckConsistency(); err != nil {
						t.Fatalf("after op %d: %v", i, err)
					}
				}
			}
			if err := st.CheckConsistency(); err != nil {
				t.Fatal(err)
			}
			if st.Len() != len(live) {
				t.Fatalf("store has %d records, model has %d", st.Len(), len(live))
			}
			for k, want := range live {
				if got, ok := st.Get(k); !ok || got != want {
					t.Fatalf("%q = (%d,%v), want (%d,true)", k, got, ok, want)
				}
			}
		})
	}
}

// TestStoreReopenEquivalenceRandomOps checks that flush + reopen from
// the device preserves the exact logical image for random histories.
func TestStoreReopenEquivalenceRandomOps(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{3, 11, 27} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dev := NewMemDevice()
			st, err := Open(dev, Options{PoolPages: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1500; i++ {
				key := fmt.Sprintf("k/%03d", rng.Intn(400))
				if rng.Intn(4) == 0 {
					st.Delete(key)
				} else {
					st.Put(key, rng.Int63n(1<<30))
				}
			}
			want, err := st.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dev, Options{PoolPages: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, err := st2.CanonicalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatal("reopened store's canonical bytes differ")
			}
		})
	}
}
