package chaos

// Wire-level fate adapter: the federation transport
// (internal/federation) reuses the chaos fault model for its hub RPCs,
// keyed by scheduler-node name instead of process name. Partitions are
// expressed as Outage windows whose Subsystem field names a node; the
// windows are measured in per-node delivery-attempt counts, so a
// partition deterministically heals once the node has burned through
// the window — every retry advances the index.

// WireFate is the transport-level outcome of one RPC delivery attempt.
type WireFate int

const (
	// WireDeliver: the request reaches the hub and the reply returns.
	WireDeliver WireFate = iota
	// WireDrop: the request never reaches the hub (transient loss, or
	// a timeout before delivery) — safe to resend.
	WireDrop
	// WireExecLostReply: the request reaches the hub and executes, but
	// the reply is lost — the ambiguous-timeout case. The client must
	// resend under the same request id; the hub's dedup table replays
	// the cached response instead of re-executing.
	WireExecLostReply
	// WireDuplicate: the request is delivered twice under the same
	// request id; the hub executes once and answers both.
	WireDuplicate
)

// WireFateAt decides the deterministic fate of one RPC delivery attempt
// of a scheduler node, as a pure function of (Seed, node, attempt).
func (p Plan) WireFateAt(node string, attempt int64) WireFate {
	switch p.fateAt(node, "wire", attempt) {
	case fateTransient, fateTimeout:
		return WireDrop
	case fateTimeoutEx:
		return WireExecLostReply
	case fateDuplicate:
		return WireDuplicate
	default:
		// Deliveries and latency spikes both deliver; the federation
		// transport has no virtual clock to charge the spike to.
		return WireDeliver
	}
}

// WireOutage reports whether the node's attempt falls inside a
// partition window (an Outage whose Subsystem names the node).
func (p Plan) WireOutage(node string, attempt int64) bool {
	for _, o := range p.Outages {
		if o.Subsystem == node && attempt >= o.From && attempt < o.To {
			return true
		}
	}
	return false
}
