// Package chaos is the resilience layer between the scheduler engines
// and the transactional subsystems: it makes the subsystem boundary
// unreliable on purpose and keeps the paper's guarantees anyway.
//
// The paper's guaranteed-termination result (Definition 5, Theorem 1)
// rests on activity typing: retriable activities may be re-invoked
// arbitrarily often, pivot failures are absorbed by alternative
// execution paths in preference order ◁, and compensation undoes
// committed compensatable work. This package exercises exactly that
// machinery under the transient-failure regime real autonomous
// subsystems exhibit:
//
//   - Transport (transport.go) wraps a Federation with a seedable,
//     deterministic per-(process,service) fault plan injecting transient
//     delivery failures, latency spikes, timeouts (whose execute/lost
//     ambiguity only the idempotency table can resolve), duplicate
//     deliveries and sustained per-subsystem outages.
//   - Layer (layer.go) is the typed retry policy engine the engines
//     call through (subsystem.ResilientInvoker): exponential backoff
//     with seeded jitter, per-process retry budgets and deadline
//     propagation; only retriable-class activities are retried at the
//     transport level, per the paper's typing, and budget exhaustion
//     surfaces as the activity abort the scheduler already handles.
//   - BreakerSet (breaker.go) keeps a closed/open/half-open circuit
//     breaker per subsystem; an open breaker fails invocations fast, so
//     processes steer onto their next ◁ alternative instead of burning
//     retries against a dead subsystem, falling back to backward
//     recovery only when no alternative avoids it.
//   - The battery (battery.go) runs hundreds of seeded scenarios
//     through both engines and asserts CheckRecovered-style invariants:
//     PRED of the observed schedule, all processes terminal,
//     exactly-once effects despite duplicates and retries, Lemma-2
//     compensation order, and zero stuck breakers.
//
// Everything is deterministic per seed: the per-attempt fate of an
// invocation depends only on (seed, process, service, attempt index),
// never on interleaving, so a failing seed reproduces anywhere.
package chaos

import (
	"math/bits"
)

// Plan is a deterministic transport-fault plan. Probabilities are per
// transport attempt; each attempt's fate is a pure function of
// (Seed, process, service, attempt index).
type Plan struct {
	// Seed drives every fate decision.
	Seed int64
	// PTransient is the probability of a transient delivery failure:
	// the invocation never reaches the subsystem (safe to resend).
	PTransient float64
	// PTimeout is the probability of a timeout: the reply is lost and —
	// on half of the timeouts, decided by a further seeded bit — the
	// invocation executed anyway, leaving a prepared transaction only
	// the idempotency table can recover.
	PTimeout float64
	// PDuplicate is the probability of a duplicate delivery: the
	// invocation is delivered twice under the same idempotency key.
	PDuplicate float64
	// PSlow is the probability of a latency spike of SlowTicks.
	PSlow float64
	// SlowTicks is the extra virtual latency of a slow delivery.
	// Default 16.
	SlowTicks int64
	// TimeoutTicks is the virtual latency a timed-out attempt costs the
	// caller. Default 32.
	TimeoutTicks int64
	// Outages are sustained per-subsystem outage windows.
	Outages []Outage
}

func (p Plan) withDefaults() Plan {
	if p.SlowTicks == 0 {
		p.SlowTicks = 16
	}
	if p.TimeoutTicks == 0 {
		p.TimeoutTicks = 32
	}
	return p
}

// Outage is a sustained outage of one subsystem: every delivery
// attempt with per-subsystem index in [From, To) fails. Measuring the
// window in delivery attempts (rather than ticks) keeps scenarios
// deterministic in the sequential engine and guarantees the window
// passes: every retry and every breaker probe advances the index.
type Outage struct {
	Subsystem string
	From, To  int64
}

// fate is the transport-level outcome of one delivery attempt.
type fate int

const (
	fateDeliver fate = iota
	fateTransient
	fateTimeout   // reply lost, invocation NOT executed
	fateTimeoutEx // reply lost, invocation executed (ambiguity case)
	fateDuplicate
	fateSlow
)

// mix64 is a splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashStr folds a string into a 64-bit value (FNV-1a).
func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// hashAt derives the decision hash of one (proc, service, attempt)
// triple under the plan's seed. A further salt decorrelates independent
// decisions of the same attempt (fate vs. executed-bit vs. jitter).
func (p Plan) hashAt(proc, service string, attempt int64, salt uint64) uint64 {
	h := mix64(uint64(p.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ hashStr(proc))
	h = mix64(h ^ hashStr(service))
	h = mix64(h ^ uint64(attempt) ^ bits.RotateLeft64(salt, 17))
	return h
}

// fateAt decides the deterministic fate of one delivery attempt.
func (p Plan) fateAt(proc, service string, attempt int64) fate {
	u := unit(p.hashAt(proc, service, attempt, 0xfa7e))
	switch {
	case u < p.PTransient:
		return fateTransient
	case u < p.PTransient+p.PTimeout:
		if p.hashAt(proc, service, attempt, 0xe8ec)&1 == 0 {
			return fateTimeoutEx
		}
		return fateTimeout
	case u < p.PTransient+p.PTimeout+p.PDuplicate:
		return fateDuplicate
	case u < p.PTransient+p.PTimeout+p.PDuplicate+p.PSlow:
		return fateSlow
	default:
		return fateDeliver
	}
}
