package chaos

import (
	"fmt"
	"sort"
	"sync"

	"transproc/internal/metrics"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed: traffic flows; consecutive transport failures are
	// counted.
	Closed BreakerState = iota
	// Open: traffic fails fast without touching the transport; after
	// the cooldown the next caller is let through as a probe.
	Open
	// HalfOpen: one probe invocation is in flight; its outcome decides
	// between Closed and re-Open.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig parameterizes the per-subsystem circuit breakers.
type BreakerConfig struct {
	// FailThreshold is the consecutive transport-failure count that
	// opens a closed breaker. Default 4.
	FailThreshold int
	// Cooldown is how long an open breaker fails fast before letting a
	// probe through, measured in breaker decisions (Allow calls across
	// all subsystems): a deterministic logical clock that both engines
	// advance just by running. Default 24.
	Cooldown int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold == 0 {
		c.FailThreshold = 4
	}
	if c.Cooldown == 0 {
		c.Cooldown = 24
	}
	return c
}

// breaker is one subsystem's state machine.
type breaker struct {
	state    BreakerState
	consec   int   // consecutive failures while Closed
	openedAt int64 // decision-clock time the breaker (re)opened
	probing  bool  // a half-open probe is in flight
}

// BreakerTransitions counts state transitions (for assertions and the
// zero-stuck-breakers invariant).
type BreakerTransitions struct {
	Opened    int64 // Closed→Open (fresh trips)
	Reopens   int64 // HalfOpen→Open (failed probes)
	HalfOpens int64 // Open→HalfOpen (probe admitted)
	Closed    int64 // HalfOpen→Closed (probe succeeded)
	FastFails int64 // calls rejected while Open/probing
}

// BreakerSet keeps one circuit breaker per subsystem over a shared
// decision clock.
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now int64 // decision clock: one tick per Allow call
	m   map[string]*breaker
	t   BreakerTransitions
	reg *metrics.Registry
}

// NewBreakerSet returns an empty breaker set; breakers materialize
// closed on first use. reg may be nil.
func NewBreakerSet(cfg BreakerConfig, reg *metrics.Registry) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker), reg: reg}
}

func (b *BreakerSet) get(sub string) *breaker {
	br := b.m[sub]
	if br == nil {
		br = &breaker{}
		b.m[sub] = br
	}
	return br
}

// Allow decides whether a call to the subsystem may proceed. probe is
// true when the call is a half-open probe (its outcome closes or
// re-opens the breaker; concurrent callers fail fast until it
// resolves). A denied call counts as a fast failure.
func (b *BreakerSet) Allow(sub string) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now++
	br := b.get(sub)
	switch br.state {
	case Closed:
		return true, false
	case Open:
		if b.now-br.openedAt >= b.cfg.Cooldown {
			br.state = HalfOpen
			br.probing = true
			b.t.HalfOpens++
			b.reg.Inc(metrics.BreakerHalfOpen)
			return true, true
		}
	case HalfOpen:
		if !br.probing {
			br.probing = true
			return true, true
		}
	}
	b.t.FastFails++
	b.reg.Inc(metrics.BreakerFastFails)
	return false, false
}

// OnSuccess records that a call reached the subsystem and got an
// answer (success, lock conflict or genuine local abort all count: the
// transport worked).
func (b *BreakerSet) OnSuccess(sub string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.get(sub)
	br.consec = 0
	br.probing = false
	if br.state != Closed {
		br.state = Closed
		b.t.Closed++
		b.reg.Inc(metrics.BreakerClosed)
	}
}

// OnFailure records a transport-level failure of a call to the
// subsystem.
func (b *BreakerSet) OnFailure(sub string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.get(sub)
	br.probing = false
	switch br.state {
	case HalfOpen:
		br.state = Open
		br.openedAt = b.now
		br.consec = 0
		b.t.Reopens++
		b.reg.Inc(metrics.BreakerOpened)
	case Closed:
		br.consec++
		if br.consec >= b.cfg.FailThreshold {
			br.state = Open
			br.openedAt = b.now
			br.consec = 0
			b.t.Opened++
			b.reg.Inc(metrics.BreakerOpened)
		}
	}
}

// State returns the subsystem's current breaker state (Closed for
// never-used subsystems).
func (b *BreakerSet) State(sub string) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if br := b.m[sub]; br != nil {
		return br.state
	}
	return Closed
}

// Transitions returns the transition counters.
func (b *BreakerSet) Transitions() BreakerTransitions {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.t
}

// OpenBreakers lists subsystems whose breaker is not Closed, sorted.
func (b *BreakerSet) OpenBreakers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for sub, br := range b.m {
		if br.state != Closed {
			out = append(out, sub)
		}
	}
	sort.Strings(out)
	return out
}

// CheckConsistent verifies the transition accounting: a breaker leaves
// the closed state only via a fresh trip (Opened) and returns to it
// only via a successful probe (Closed) — reopens stay inside the
// non-closed stretch — so trips minus closes must equal the breakers
// currently non-closed.
func (b *BreakerSet) CheckConsistent() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	unresolved := int64(0)
	for _, br := range b.m {
		if br.state != Closed {
			unresolved++
		}
	}
	if b.t.Opened-b.t.Closed != unresolved {
		return fmt.Errorf("breaker accounting broken: opened=%d closed=%d but %d breakers non-closed",
			b.t.Opened, b.t.Closed, unresolved)
	}
	return nil
}
