package chaos

import (
	"flag"
	"testing"
)

var (
	chaosSeed  = flag.Int64("chaos.seed", -1, "run only this chaos seed")
	chaosFirst = flag.Int64("chaos.first", 0, "first chaos seed of the battery")
	chaosCount = flag.Int64("chaos.count", 200, "number of chaos seeds to run")
)

// TestChaosBattery runs the seeded scenario battery; every failure
// message embeds the reproducing seed (re-run one with -chaos.seed).
func TestChaosBattery(t *testing.T) {
	if *chaosSeed >= 0 {
		sc := ScenarioFor(*chaosSeed)
		t.Logf("seed %d: class=%s engine=%s mode=%v", sc.Seed, sc.Class, sc.Engine, sc.Mode)
		if err := RunScenario(sc); err != nil {
			t.Fatal(err)
		}
		return
	}
	n := *chaosCount
	if testing.Short() && n > 48 {
		n = 48
	}
	sum := RunChaos(*chaosFirst, n)
	t.Logf("chaos: %d scenarios, classes %v", sum.Scenarios, sum.ByClass)
	for _, f := range sum.Failures {
		t.Errorf("%s", f)
	}
}

// TestScenarioForDeterministic pins that scenarios are pure functions
// of their seed.
func TestScenarioForDeterministic(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		a, b := ScenarioFor(seed), ScenarioFor(seed)
		if a.Class != b.Class || a.Mode != b.Mode || a.Engine != b.Engine ||
			a.Plan.PTransient != b.Plan.PTransient || a.Plan.PTimeout != b.Plan.PTimeout ||
			a.Plan.PDuplicate != b.Plan.PDuplicate || a.Plan.PSlow != b.Plan.PSlow ||
			a.CrashAfterWAL != b.CrashAfterWAL || len(a.Plan.Outages) != len(b.Plan.Outages) {
			t.Fatalf("seed %d: ScenarioFor not deterministic", seed)
		}
	}
}

// TestFateDeterministic pins the transport fate function: same seed,
// same (proc, service, attempt) — same fate; and the distribution
// roughly matches the plan.
func TestFateDeterministic(t *testing.T) {
	p := Plan{Seed: 42, PTransient: 0.2, PTimeout: 0.1, PDuplicate: 0.1, PSlow: 0.1}.withDefaults()
	counts := make(map[fate]int)
	for i := int64(0); i < 4000; i++ {
		f1 := p.fateAt("P1", "svc", i)
		f2 := p.fateAt("P1", "svc", i)
		if f1 != f2 {
			t.Fatalf("attempt %d: fate not deterministic (%v vs %v)", i, f1, f2)
		}
		counts[f1]++
	}
	frac := func(f ...fate) float64 {
		n := 0
		for _, x := range f {
			n += counts[x]
		}
		return float64(n) / 4000
	}
	if got := frac(fateTransient); got < 0.15 || got > 0.25 {
		t.Errorf("transient fraction %.3f, want ~0.20", got)
	}
	if got := frac(fateTimeout, fateTimeoutEx); got < 0.06 || got > 0.14 {
		t.Errorf("timeout fraction %.3f, want ~0.10", got)
	}
	if got := frac(fateDeliver, fateSlow, fateDuplicate); got < 0.6 {
		t.Errorf("delivery fraction %.3f suspiciously low", got)
	}
	// Different seeds decorrelate.
	q := p
	q.Seed = 43
	same := 0
	for i := int64(0); i < 1000; i++ {
		if p.fateAt("P1", "svc", i) == q.fateAt("P1", "svc", i) {
			same++
		}
	}
	if same > 990 {
		t.Errorf("seeds 42 and 43 agree on %d/1000 fates; seed not mixed in", same)
	}
}
