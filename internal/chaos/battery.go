package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// Scenario is one fully determined chaos case: a seeded workload (or a
// directed paper fixture), a transport-fault plan, the retry/breaker
// configuration and the engine to run it under. ScenarioFor(seed) is a
// pure function, so a failing seed reproduces the exact same scenario
// anywhere.
type Scenario struct {
	Seed  int64
	Class string
	Mode  scheduler.Mode
	// Engine selects the execution engine: "engine" (sequential) or
	// "runtime" (concurrent).
	Engine  string
	Plan    Plan
	Policy  RetryPolicy
	Breaker BreakerConfig
	// CrashAfterWAL, when positive, composes the chaos layer with the
	// crash injector: the run dies after that many WAL appends and must
	// recover (fault.CheckRecovered judges the result).
	CrashAfterWAL int
	// GroupCommit, when enabled, wraps the scenario's log in the
	// batching appender so chaos (and mid-chaos crashes) also run
	// through coalesced flushes.
	GroupCommit wal.GroupCommit
}

// ScenarioFor derives the deterministic scenario of a seed. Eight
// classes cycle by seed: transient storms, timeout ambiguity, duplicate
// deliveries, latency spikes, a sustained outage steering the CIM
// construction process onto its ◁ alternative, a sustained outage
// forcing the CIM production process into backward recovery, a mixed
// plan under the concurrent runtime, and chaos composed with a
// mid-chaos crash plus recovery.
func ScenarioFor(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	sc := Scenario{Seed: seed, Engine: "engine", Mode: scheduler.PRED}
	if seed%3 == 0 {
		sc.Mode = scheduler.PREDCascade
	}
	if seed%2 == 1 {
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(15)}
	}
	sc.Plan.Seed = seed
	switch seed % 8 {
	case 0:
		sc.Class = "transient-storm"
		sc.Plan.PTransient = 0.15 + 0.25*rng.Float64()
		sc.Plan.PSlow = 0.10
	case 1:
		sc.Class = "timeout-ambiguity"
		sc.Plan.PTimeout = 0.20 + 0.20*rng.Float64()
		sc.Plan.PTransient = 0.05
	case 2:
		sc.Class = "duplicate-delivery"
		sc.Plan.PDuplicate = 0.25 + 0.15*rng.Float64()
		sc.Plan.PTransient = 0.05
	case 3:
		sc.Class = "latency-spike"
		sc.Plan.PSlow = 0.35 + 0.25*rng.Float64()
		sc.Plan.SlowTicks = int64(8 + rng.Intn(40))
		sc.Plan.PTransient = 0.05
	case 4:
		sc.Class = "outage-failover"
		// The PDM never answers: enterBOM (compensatable) fails at the
		// transport, and the construction process must take its ◁
		// alternative (document the CAD drawing) instead of stalling.
		sc.Plan.Outages = []Outage{{Subsystem: "pdm", From: 0, To: 1 << 40}}
		sc.Breaker = BreakerConfig{FailThreshold: 2, Cooldown: 16}
	case 5:
		sc.Class = "outage-backward"
		// The production floor never answers: produce (pivot, no
		// alternative) fails and the production process falls back to
		// backward recovery, compensating everything before the pivot.
		sc.Plan.Outages = []Outage{{Subsystem: "floor", From: 0, To: 1 << 40}}
		sc.Breaker = BreakerConfig{FailThreshold: 2, Cooldown: 16}
	case 6:
		sc.Class = "runtime-mixed"
		sc.Engine = "runtime"
		sc.Plan.PTransient = 0.10 + 0.10*rng.Float64()
		sc.Plan.PTimeout = 0.08
		sc.Plan.PDuplicate = 0.08
		sc.Plan.PSlow = 0.05
	case 7:
		sc.Class = "chaos-crash"
		sc.Plan.PTransient = 0.12
		sc.Plan.PTimeout = 0.08
		sc.Plan.PDuplicate = 0.08
		sc.CrashAfterWAL = 5 + rng.Intn(120)
	}
	return sc
}

// chaosProfile is the generated workload the generic classes run.
func chaosProfile(seed int64) workload.Profile {
	p := workload.DefaultProfile(seed)
	p.Processes = 10
	p.ConflictProb = 0.35
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.05
	return p
}

// fixtures builds the scenario's federation and jobs.
func fixtures(sc Scenario) (*subsystem.Federation, []scheduler.Job, error) {
	switch sc.Class {
	case "outage-failover":
		fed := paper.CIMFederation(sc.Seed)
		var jobs []scheduler.Job
		for i := 1; i <= 8; i++ {
			jobs = append(jobs, scheduler.Job{
				Proc: paper.CIMConstruction(process.ID(fmt.Sprintf("C%d", i))),
			})
		}
		return fed, jobs, nil
	case "outage-backward":
		fed := paper.CIMFederation(sc.Seed)
		var jobs []scheduler.Job
		for i := 1; i <= 4; i++ {
			jobs = append(jobs, scheduler.Job{
				Proc: paper.CIMProduction(process.ID(fmt.Sprintf("M%d", i))),
			})
		}
		return fed, jobs, nil
	default:
		w, err := workload.Generate(chaosProfile(sc.Seed))
		if err != nil {
			return nil, nil, err
		}
		return w.Fed, w.Jobs, nil
	}
}

// RunScenario executes one scenario end to end and checks every
// resilience invariant; the returned error describes the violated one
// and embeds the reproducing seed. nil means the scenario passed.
func RunScenario(sc Scenario) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("seed %d (%s): %s", sc.Seed, sc.Class, fmt.Sprintf(format, args...))
	}
	fed, jobs, err := fixtures(sc)
	if err != nil {
		return fail("fixtures: %v", err)
	}
	defs := make([]*process.Process, 0, len(jobs))
	for _, j := range jobs {
		defs = append(defs, j.Proc)
	}
	reg := metrics.New()
	layer := NewLayer(fed, sc.Plan, sc.Policy, sc.Breaker, reg)

	// The run writes through the (possibly crash-armed) wrapper; recovery
	// and checks read and write the backend directly — the wrapper drops
	// post-crash appends, as a crashed system must.
	backend := wal.NewMemLog()
	var log wal.Log = backend
	if sc.CrashAfterWAL > 0 {
		log = fault.WrapWAL(backend, sc.CrashAfterWAL)
	}

	var res runResult
	crashed := false
	switch sc.Engine {
	case "runtime":
		r, nerr := runtime.New(fed, runtime.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: 64,
			Metrics: reg, Resilience: layer, GroupCommit: sc.GroupCommit,
		})
		if nerr != nil {
			return fail("new runtime: %v", nerr)
		}
		out, rerr := r.Run(context.Background(), jobs)
		if rerr != nil {
			if errors.Is(rerr, scheduler.ErrCrashed) && sc.CrashAfterWAL > 0 {
				crashed = true
			} else {
				return fail("run: %v", rerr)
			}
		}
		if out != nil {
			res = runResult{sched: out.Schedule, metrics: out.Metrics, outcomes: out.Outcomes}
		}
	default:
		eng, nerr := scheduler.New(fed, scheduler.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: 64,
			Metrics: reg, Resilience: layer, GroupCommit: sc.GroupCommit,
		})
		if nerr != nil {
			return fail("new engine: %v", nerr)
		}
		out, rerr := eng.RunJobs(jobs)
		if rerr != nil {
			if errors.Is(rerr, scheduler.ErrCrashed) && sc.CrashAfterWAL > 0 {
				crashed = true
			} else {
				return fail("run: %v", rerr)
			}
		}
		if out != nil {
			res = runResult{sched: out.Schedule, metrics: out.Metrics, outcomes: out.Outcomes}
		}
	}

	// Recovery: crashed runs must be repaired; clean runs must make it a
	// no-op. Recovery runs on the reliable path (no chaos), as a
	// restarted scheduler would.
	preRecs, err := backend.Records()
	if err != nil {
		return fail("reading log: %v", err)
	}
	pre := len(preRecs)
	if _, err := scheduler.Recover(fed, backend, defs); err != nil {
		return fail("recovery: %v", err)
	}
	if err := fault.CheckRecovered(fault.CheckInput{
		Fed: fed, Log: backend, Defs: defs, PreCrashRecords: pre,
	}); err != nil {
		return fail("%v", err)
	}

	// Live-run invariants (the observed schedule only exists for clean
	// runs; a crashed run is judged through its log above).
	if !crashed {
		if res.sched == nil {
			return fail("clean run returned no schedule")
		}
		ok, at, _, perr := res.sched.PRED()
		if perr != nil {
			return fail("PRED check: %v", perr)
		}
		if !ok {
			return fail("observed schedule not prefix-reducible (prefix %d)", at)
		}
		for id, o := range res.outcomes {
			if !o.Committed && !o.Aborted {
				return fail("process %s not terminal", id)
			}
		}
	}

	// Lemma 2 over the whole log: conflicting (or same-process)
	// compensations must run in reverse order of their bases' commits.
	if err := checkCompensationOrder(fed, preRecs); err != nil {
		return fail("%v", err)
	}

	// Resilience-layer invariants: internal accounting consistent, no
	// breaker left open against a subsystem whose last delivery worked.
	if err := layer.CheckConsistent(); err != nil {
		return fail("%v", err)
	}
	if stuck := layer.StuckBreakers(); len(stuck) > 0 {
		return fail("stuck breakers (open but last delivery succeeded): %v", stuck)
	}

	return checkClass(sc, fed, layer, res, fail)
}

// runResult is the engine-independent slice of a run result the checks
// need.
type runResult struct {
	sched    *schedule.Schedule
	metrics  scheduler.Metrics
	outcomes map[process.ID]*scheduler.Outcome
}

// checkClass asserts the scenario class did what it is named for.
func checkClass(sc Scenario, fed *subsystem.Federation, layer *Layer, res runResult, fail func(string, ...any) error) error {
	ts := layer.Transport().Stats()
	ls := layer.Stats()
	bt := layer.Breakers().Transitions()
	switch sc.Class {
	case "transient-storm":
		if ts.Attempts >= 30 && ts.Transient == 0 {
			return fail("class assert: no transient failures injected over %d attempts", ts.Attempts)
		}
	case "timeout-ambiguity":
		if ts.Attempts >= 30 && ts.Timeouts == 0 {
			return fail("class assert: no timeouts injected over %d attempts", ts.Attempts)
		}
	case "duplicate-delivery":
		if ts.Attempts >= 30 && ts.Duplicates == 0 {
			return fail("class assert: no duplicates injected over %d attempts", ts.Attempts)
		}
		// Exactly-once mechanics: delivered duplicates must show up as
		// idempotent replays, never as second executions.
		var replays int64
		for _, sub := range fed.Subsystems() {
			_, r := sub.IdemStats()
			replays += r
		}
		if ts.Duplicates >= 3 && replays == 0 {
			return fail("class assert: %d duplicate deliveries but zero idempotent replays", ts.Duplicates)
		}
	case "latency-spike":
		if ts.Attempts >= 30 && ts.Slow == 0 {
			return fail("class assert: no latency spikes injected over %d attempts", ts.Attempts)
		}
	case "outage-failover":
		// The ◁-path assertion of the battery: with the PDM dead, every
		// construction process must still commit — via the docCAD
		// alternative — and the breaker must have tripped and steered
		// later processes past the dead subsystem without touching it.
		for id, o := range res.outcomes {
			if !o.Committed {
				return fail("class assert: process %s did not commit despite ◁ alternative", id)
			}
		}
		alt := 0
		for _, ev := range res.sched.Events() {
			if ev.Type == schedule.Invoke && ev.Service == paper.SvcDocCAD {
				alt++
			}
		}
		if alt == 0 {
			return fail("class assert: no process took the %s ◁ alternative", paper.SvcDocCAD)
		}
		if bt.Opened == 0 {
			return fail("class assert: pdm outage never opened its breaker")
		}
		if ls.FastFails == 0 {
			return fail("class assert: open breaker never fast-failed a pdm invocation")
		}
	case "outage-backward":
		// No alternative avoids the floor: every production process must
		// terminate via backward recovery, compensating its
		// pre-pivot work.
		for id, o := range res.outcomes {
			if !o.Aborted {
				return fail("class assert: process %s did not abort despite dead pivot subsystem", id)
			}
		}
		if res.metrics.Compensations < 3 {
			return fail("class assert: only %d compensations (want >= 3 per aborted process)", res.metrics.Compensations)
		}
		if bt.Opened == 0 {
			return fail("class assert: floor outage never opened its breaker")
		}
	case "runtime-mixed":
		if ts.Attempts == 0 {
			return fail("class assert: runtime run made no transport attempts")
		}
	case "chaos-crash":
		// Judged by CheckRecovered above.
	}
	return nil
}

// Summary aggregates a chaos batch.
type Summary struct {
	Scenarios int            `json:"scenarios"`
	Failures  []string       `json:"failures,omitempty"`
	ByClass   map[string]int `json:"byClass"`
}

// RunChaos runs the scenarios of seeds [first, first+n) and collects a
// summary; every failure message embeds the reproducing seed.
func RunChaos(first, n int64) Summary {
	return RunChaosProgress(first, n, nil)
}

// RunChaosProgress is RunChaos with a per-seed progress hook, called
// before each scenario runs; the CLI uses it to report the in-flight
// reproducing seed when the battery is interrupted.
func RunChaosProgress(first, n int64, progress func(seed int64, class string)) Summary {
	sum := Summary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := ScenarioFor(seed)
		if progress != nil {
			progress(seed, sc.Class)
		}
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		if err := RunScenario(sc); err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}

// checkCompensationOrder asserts Lemma 2 over a run's log: when two
// compensations undo base activities that conflict (or belong to the
// same process) and both bases executed before either compensation ran,
// the compensations must run in reverse order of their bases. A base
// that only executed after the other compensation belongs to a later,
// independent episode and is unconstrained.
func checkCompensationOrder(fed *subsystem.Federation, recs []wal.Record) error {
	table, err := fed.ConflictTable()
	if err != nil {
		return fmt.Errorf("conflict table: %w", err)
	}
	type comp struct {
		proc    string
		local   int
		pos     int // compensation position in the log
		basePos int // base execution position in the log
		baseSvc string
	}
	svc := make(map[string]string)  // proc/local -> base service
	basePos := make(map[string]int) // proc/local -> latest execution position
	var comps []comp
	for i, r := range recs {
		key := fmt.Sprintf("%s/%d", r.Proc, r.Local)
		switch {
		case r.Type == wal.RecDispatch:
			svc[key] = r.Service
		case r.Type == wal.RecOutcome && (r.Outcome == "prepared" || r.Outcome == "committed"):
			// Execution (serialization) order, not 2PC-resolution order:
			// a deferred commit resolves at process termination, long
			// after the local transaction took its locks.
			basePos[key] = i
		case r.Type == wal.RecCompensate:
			b, known := basePos[key]
			if !known {
				return fmt.Errorf("compensated %s whose base execution is not in the log", key)
			}
			comps = append(comps, comp{proc: r.Proc, local: r.Local, pos: i, basePos: b, baseSvc: svc[key]})
		}
	}
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			a, b := comps[i], comps[j]
			// Lemma 2 orders compensations of *conflicting* bases;
			// non-conflicting ones (e.g. parallel siblings of one
			// process) may compensate in any order.
			related := a.baseSvc != "" && b.baseSvc != "" &&
				table.Conflicts(a.baseSvc, b.baseSvc)
			// Violation: conflicting bases, executed a-then-b, both live
			// when a's compensation ran, yet a was compensated first.
			if related && a.basePos < b.basePos && b.basePos < a.pos {
				return fmt.Errorf("Lemma 2 violated: compensation of %s/%d (base @%d) before %s/%d (base @%d)",
					a.proc, a.local, a.basePos, b.proc, b.local, b.basePos)
			}
		}
	}
	return nil
}
