package chaos

import (
	"errors"
	"sync"

	"transproc/internal/metrics"
	"transproc/internal/subsystem"
)

// TransportStats aggregates what a Transport injected and delivered.
type TransportStats struct {
	Attempts   int64 // transport attempts observed
	Delivered  int64 // attempts that reached a subsystem
	Transient  int64 // injected transient delivery failures
	Timeouts   int64 // injected timeouts (executed or not)
	Duplicates int64 // injected duplicate deliveries
	Slow       int64 // injected latency spikes
	OutageHits int64 // attempts swallowed by an outage window
}

// Transport wraps a Federation with the deterministic fault plan: each
// delivery attempt is either passed through (possibly duplicated or
// slowed) or fails with a typed transport error. All deliveries go
// through the idempotency table (InvokeIdem), so duplicates and
// timeout-recovery replays stay exactly-once.
type Transport struct {
	fed  *subsystem.Federation
	plan Plan
	reg  *metrics.Registry

	mu sync.Mutex
	// attempts counts transport attempts per proc+"/"+service — the
	// attempt index the plan's fate function is keyed on.
	attempts map[string]int64
	// subTries counts delivery attempts per subsystem; outage windows
	// are measured against it.
	subTries map[string]int64
	// lastFailed records, per subsystem, whether the most recent
	// delivery attempt failed at the transport level (the stuck-breaker
	// invariant consults it).
	lastFailed map[string]bool
	stats      TransportStats
}

// NewTransport wraps the federation with a fault plan. reg may be nil.
func NewTransport(fed *subsystem.Federation, plan Plan, reg *metrics.Registry) *Transport {
	return &Transport{
		fed:        fed,
		plan:       plan.withDefaults(),
		reg:        reg,
		attempts:   make(map[string]int64),
		subTries:   make(map[string]int64),
		lastFailed: make(map[string]bool),
	}
}

// Stats returns a snapshot of the injection counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// LastDeliveryFailed reports whether the most recent delivery attempt
// to the subsystem failed at the transport level.
func (t *Transport) LastDeliveryFailed(sub string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastFailed[sub]
}

// Federation exposes the wrapped federation (the reliable control
// plane: 2PC resolution, recovery and idempotency lookups bypass the
// flaky delivery path).
func (t *Transport) Federation() *subsystem.Federation { return t.fed }

// Invoke delivers one attempt of the keyed invocation. It returns the
// subsystem's Result on delivery, the virtual latency the transport
// added, and a typed error: the subsystem's own (ErrLocked/ErrAborted,
// passed through) or an injected transport failure (ErrTransient,
// ErrTimeout). An outage window swallows every attempt to the affected
// subsystem; each swallowed attempt still advances the per-subsystem
// index, so finite windows always pass.
func (t *Transport) Invoke(key, proc, service string, mode subsystem.Mode) (*subsystem.Result, int64, error) {
	sub, ok := t.fed.Owner(service)
	if !ok {
		res, err := t.fed.Invoke(proc, service, mode)
		return res, 0, err
	}
	subName := sub.Name()

	t.mu.Lock()
	ps := proc + "/" + service
	attempt := t.attempts[ps]
	t.attempts[ps]++
	t.subTries[subName]++
	t.stats.Attempts++

	n := t.subTries[subName] - 1
	for _, o := range t.plan.Outages {
		if o.Subsystem == subName && n >= o.From && n < o.To {
			t.stats.OutageHits++
			t.lastFailed[subName] = true
			// Alternate transient/timeout flavours deterministically.
			kind := subsystem.ErrTransient
			lat := int64(0)
			if t.plan.hashAt(proc, service, attempt, 0x07a1)&1 == 0 {
				kind = subsystem.ErrTimeout
				lat = t.plan.TimeoutTicks
			}
			t.mu.Unlock()
			t.incKind(kind)
			return nil, lat, &subsystem.SubsystemError{
				Subsystem: subName, Service: service, Kind: kind, Detail: "outage",
			}
		}
	}

	f := t.plan.fateAt(proc, service, attempt)
	switch f {
	case fateTransient:
		t.stats.Transient++
		t.lastFailed[subName] = true
		t.mu.Unlock()
		t.reg.Inc(metrics.ChaosTransient)
		return nil, 0, &subsystem.SubsystemError{
			Subsystem: subName, Service: service, Kind: subsystem.ErrTransient,
		}
	case fateTimeout:
		t.stats.Timeouts++
		t.lastFailed[subName] = true
		t.mu.Unlock()
		t.reg.Inc(metrics.ChaosTimeouts)
		return nil, t.plan.TimeoutTicks, &subsystem.SubsystemError{
			Subsystem: subName, Service: service, Kind: subsystem.ErrTimeout,
		}
	}

	// The attempt reaches the subsystem.
	t.stats.Delivered++
	switch f {
	case fateTimeoutEx:
		t.stats.Timeouts++
		t.lastFailed[subName] = true
		t.mu.Unlock()
		t.reg.Inc(metrics.ChaosTimeouts)
		// Execute, then lose the reply: the ambiguity the idempotency
		// table resolves. A failed execution left no effects, so the
		// lost reply is indistinguishable from fateTimeout — either
		// way LookupIdem finds nothing and resending is safe.
		_, _, _ = t.fed.InvokeIdem(key, proc, service, mode)
		return nil, t.plan.TimeoutTicks, &subsystem.SubsystemError{
			Subsystem: subName, Service: service, Kind: subsystem.ErrTimeout,
			Detail: "reply lost",
		}
	case fateDuplicate:
		t.stats.Duplicates++
		t.mu.Unlock()
		t.reg.Inc(metrics.ChaosDuplicates)
		// Deliver twice under the same key; the dedup table makes the
		// second delivery a replay of the first outcome.
		res, _, err := t.fed.InvokeIdem(key, proc, service, mode)
		if err == nil {
			res, _, err = t.fed.InvokeIdem(key, proc, service, mode)
		}
		t.noteDelivery(subName, err)
		return res, 0, err
	case fateSlow:
		t.stats.Slow++
		t.mu.Unlock()
		t.reg.Inc(metrics.ChaosSlow)
		res, _, err := t.fed.InvokeIdem(key, proc, service, mode)
		t.noteDelivery(subName, err)
		return res, t.plan.SlowTicks, err
	default:
		t.mu.Unlock()
		res, _, err := t.fed.InvokeIdem(key, proc, service, mode)
		t.noteDelivery(subName, err)
		return res, 0, err
	}
}

// noteDelivery records that the subsystem answered (success, lock
// conflict or genuine abort all count: the transport worked).
func (t *Transport) noteDelivery(subName string, err error) {
	t.mu.Lock()
	t.lastFailed[subName] = false
	t.mu.Unlock()
	_ = err
}

// Lookup resolves an idempotency key through the reliable control
// plane (timeout-ambiguity resolution).
func (t *Transport) Lookup(service, key string) (*subsystem.Result, bool) {
	return t.fed.LookupIdem(service, key)
}

// incKind bumps the matching injection counter.
func (t *Transport) incKind(kind error) {
	if errors.Is(kind, subsystem.ErrTimeout) {
		t.reg.Inc(metrics.ChaosTimeouts)
	} else {
		t.reg.Inc(metrics.ChaosTransient)
	}
}
