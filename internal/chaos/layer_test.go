package chaos

import (
	"errors"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/subsystem"
)

// testFed builds a one-subsystem federation with a retriable and a
// pivot service.
func testFed(seed int64) *subsystem.Federation {
	fed := subsystem.NewFederation()
	s := subsystem.New("s1", seed)
	s.MustRegister(activity.Spec{
		Name: "r1", Kind: activity.Retriable, Subsystem: "s1", WriteSet: []string{"x"}, Cost: 1,
	})
	s.MustRegister(activity.Spec{
		Name: "p1", Kind: activity.Pivot, Subsystem: "s1", WriteSet: []string{"y"}, Cost: 1,
	})
	fed.MustAdd(s)
	return fed
}

// TestTypedRetryThroughOutage: a retriable invocation rides out a
// two-attempt outage via transport retries; the engine never sees the
// failures.
func TestTypedRetryThroughOutage(t *testing.T) {
	fed := testFed(1)
	plan := Plan{Seed: 5, Outages: []Outage{{Subsystem: "s1", From: 0, To: 2}}}
	l := NewLayer(fed, plan, RetryPolicy{}, BreakerConfig{FailThreshold: 10}, nil)

	res, lat, err := l.InvokeResilient("P1", "r1", activity.Retriable, subsystem.Prepare, "k1")
	if err != nil {
		t.Fatalf("retriable invocation failed through a finite outage: %v", err)
	}
	if res == nil || res.Tx == 0 {
		t.Fatal("no prepared transaction returned")
	}
	if lat <= 0 {
		t.Fatalf("latency %d, want > 0 (backoff + injected latency)", lat)
	}
	if st := l.Stats(); st.Retries != 2 {
		t.Fatalf("retries %d, want 2 (outage swallowed attempts 0 and 1)", st.Retries)
	}
	if ts := l.Transport().Stats(); ts.OutageHits != 2 || ts.Delivered != 1 {
		t.Fatalf("transport stats %+v, want 2 outage hits and 1 delivery", ts)
	}
}

// TestNonRetriableSurfacesImmediately: a pivot's transport failure is
// the scheduler's decision to make (◁ alternatives / backward
// recovery), not the layer's — no transport retry happens.
func TestNonRetriableSurfacesImmediately(t *testing.T) {
	fed := testFed(1)
	plan := Plan{Seed: 5, Outages: []Outage{{Subsystem: "s1", From: 0, To: 2}}}
	l := NewLayer(fed, plan, RetryPolicy{}, BreakerConfig{FailThreshold: 10}, nil)

	res, _, err := l.InvokeResilient("P1", "p1", activity.Pivot, subsystem.Prepare, "k1")
	if res != nil || !subsystem.IsInvocationFailure(err) {
		t.Fatalf("want surfaced invocation failure, got res=%v err=%v", res, err)
	}
	if st := l.Stats(); st.Retries != 0 {
		t.Fatalf("layer retried a pivot %d times; typed retry must not", st.Retries)
	}
	var se *subsystem.SubsystemError
	if !errors.As(err, &se) || se.Subsystem != "s1" || se.Service != "p1" {
		t.Fatalf("error %v does not carry typed subsystem/service", err)
	}
}

// TestTimeoutReplyRecovery: when a timed-out invocation actually
// executed (reply lost), the layer must find its outcome in the
// idempotency table and return success — never orphan the prepared
// transaction by surfacing an abort.
func TestTimeoutReplyRecovery(t *testing.T) {
	// Find a seed whose first attempt is an executed-timeout.
	var plan Plan
	found := false
	for seed := int64(0); seed < 4096; seed++ {
		plan = Plan{Seed: seed, PTimeout: 1.0}
		if plan.fateAt("P1", "r1", 0) == fateTimeoutEx {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed yields an executed-timeout first attempt")
	}
	fed := testFed(1)
	l := NewLayer(fed, plan, RetryPolicy{}, BreakerConfig{FailThreshold: 10}, nil)

	res, _, err := l.InvokeResilient("P1", "r1", activity.Retriable, subsystem.Prepare, "k1")
	if err != nil {
		t.Fatalf("executed-timeout not recovered: %v", err)
	}
	if res == nil || res.Tx == 0 {
		t.Fatal("recovered reply carries no transaction")
	}
	if st := l.Stats(); st.RepliesRecovered != 1 {
		t.Fatalf("replies recovered %d, want 1", st.RepliesRecovered)
	}
	// The prepared transaction is live and owned, not orphaned.
	sub, _ := fed.Subsystem("s1")
	if err := sub.CommitPrepared(res.Tx); err != nil {
		t.Fatalf("recovered transaction not committable: %v", err)
	}
}

// TestDuplicateDeliveryExactlyOnce: a duplicated delivery is degraded
// to an idempotent replay; committing the returned transaction applies
// the effect exactly once.
func TestDuplicateDeliveryExactlyOnce(t *testing.T) {
	fed := testFed(1)
	plan := Plan{Seed: 7, PDuplicate: 1.0}
	l := NewLayer(fed, plan, RetryPolicy{}, BreakerConfig{}, nil)

	res, _, err := l.InvokeResilient("P1", "r1", activity.Retriable, subsystem.Prepare, "k1")
	if err != nil {
		t.Fatalf("duplicated delivery failed: %v", err)
	}
	sub, _ := fed.Subsystem("s1")
	entries, replays := sub.IdemStats()
	if entries != 1 || replays != 1 {
		t.Fatalf("idem entries=%d replays=%d, want 1 and 1 (second delivery deduplicated)", entries, replays)
	}
	if err := sub.CommitPrepared(res.Tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := fed.Snapshot()["s1/x"]; got != 1 {
		t.Fatalf("item s1/x = %d after a duplicated delivery, want exactly 1", got)
	}
}

// TestCircuitOpenFastFail: once the breaker opens, calls fail fast with
// a typed transient error and never reach the transport.
func TestCircuitOpenFastFail(t *testing.T) {
	fed := testFed(1)
	plan := Plan{Seed: 5, Outages: []Outage{{Subsystem: "s1", From: 0, To: 1 << 40}}}
	l := NewLayer(fed, plan, RetryPolicy{}, BreakerConfig{FailThreshold: 1, Cooldown: 1000}, nil)

	if _, _, err := l.InvokeResilient("P1", "p1", activity.Pivot, subsystem.Prepare, "k1"); err == nil {
		t.Fatal("sustained outage did not fail the invocation")
	}
	if st := l.Breakers().State("s1"); st != Open {
		t.Fatalf("breaker %v after threshold failure, want open", st)
	}
	before := l.Transport().Stats().Attempts

	_, _, err := l.InvokeResilient("P2", "p1", activity.Pivot, subsystem.Prepare, "k2")
	if !errors.Is(err, subsystem.ErrTransient) {
		t.Fatalf("fast-fail error %v, want ErrTransient", err)
	}
	var se *subsystem.SubsystemError
	if !errors.As(err, &se) || se.Detail != "circuit open" {
		t.Fatalf("fast-fail error %v does not say circuit open", err)
	}
	if after := l.Transport().Stats().Attempts; after != before {
		t.Fatalf("fast-fail still hit the transport (%d -> %d attempts)", before, after)
	}
	if st := l.Stats(); st.FastFails == 0 {
		t.Fatal("no fast-fail recorded")
	}
}

// TestRetryBudgetExhaustion: once a process burns its retry budget, the
// layer stops masking failures and surfaces them.
func TestRetryBudgetExhaustion(t *testing.T) {
	fed := testFed(1)
	plan := Plan{Seed: 5, Outages: []Outage{{Subsystem: "s1", From: 0, To: 1 << 40}}}
	l := NewLayer(fed, plan, RetryPolicy{ProcessBudget: 3, MaxAttempts: 10, Deadline: 1 << 40},
		BreakerConfig{FailThreshold: 1 << 30}, nil)

	_, _, err := l.InvokeResilient("P1", "r1", activity.Retriable, subsystem.Prepare, "k1")
	if !subsystem.IsInvocationFailure(err) {
		t.Fatalf("want surfaced failure after budget exhaustion, got %v", err)
	}
	st := l.Stats()
	if st.Retries != 3 {
		t.Fatalf("retries %d, want exactly the budget (3)", st.Retries)
	}
	if st.BudgetExhausted != 1 {
		t.Fatalf("budget exhaustion events %d, want 1", st.BudgetExhausted)
	}
	// The budget is per process: another process still gets retries.
	_, _, _ = l.InvokeResilient("P2", "r1", activity.Retriable, subsystem.Prepare, "k2")
	if st := l.Stats(); st.Retries <= 3 {
		t.Fatalf("second process got no retries (total %d)", st.Retries)
	}
}
