package chaos

import "testing"

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle and the half-open → open regression.
func TestBreakerStateMachine(t *testing.T) {
	b := NewBreakerSet(BreakerConfig{FailThreshold: 3, Cooldown: 5}, nil)

	if st := b.State("pdm"); st != Closed {
		t.Fatalf("fresh breaker %v, want closed", st)
	}
	// Failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow("pdm"); !ok {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.OnFailure("pdm")
	}
	if st := b.State("pdm"); st != Closed {
		t.Fatalf("after 2 failures: %v, want closed", st)
	}
	// A success resets the consecutive count.
	if ok, _ := b.Allow("pdm"); !ok {
		t.Fatal("closed breaker denied call")
	}
	b.OnSuccess("pdm")
	for i := 0; i < 2; i++ {
		b.Allow("pdm")
		b.OnFailure("pdm")
	}
	if st := b.State("pdm"); st != Closed {
		t.Fatalf("reset consec count did not survive: %v", st)
	}
	// The third consecutive failure opens it.
	b.Allow("pdm")
	b.OnFailure("pdm")
	if st := b.State("pdm"); st != Open {
		t.Fatalf("after threshold failures: %v, want open", st)
	}
	// Open: calls fail fast until the cooldown passes.
	if ok, _ := b.Allow("pdm"); ok {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	// Burn the cooldown on the decision clock (other subsystems' traffic
	// advances it too).
	for i := 0; i < 5; i++ {
		b.Allow("cad")
		b.OnSuccess("cad")
	}
	ok, probe := b.Allow("pdm")
	if !ok || !probe {
		t.Fatalf("after cooldown: ok=%v probe=%v, want probe admitted", ok, probe)
	}
	if st := b.State("pdm"); st != HalfOpen {
		t.Fatalf("probe admitted but state %v, want half-open", st)
	}
	// While the probe is in flight, other callers fail fast.
	if ok, _ := b.Allow("pdm"); ok {
		t.Fatal("half-open breaker admitted a second concurrent call")
	}
	// Probe failure re-opens.
	b.OnFailure("pdm")
	if st := b.State("pdm"); st != Open {
		t.Fatalf("failed probe: %v, want open", st)
	}
	// Cooldown again; successful probe closes.
	for i := 0; i < 5; i++ {
		b.Allow("cad")
		b.OnSuccess("cad")
	}
	if ok, probe := b.Allow("pdm"); !ok || !probe {
		t.Fatalf("second probe not admitted (ok=%v probe=%v)", ok, probe)
	}
	b.OnSuccess("pdm")
	if st := b.State("pdm"); st != Closed {
		t.Fatalf("successful probe: %v, want closed", st)
	}

	tr := b.Transitions()
	if tr.Opened != 1 || tr.Reopens != 1 || tr.HalfOpens != 2 || tr.Closed != 1 {
		t.Fatalf("transitions %+v, want opened=1 reopens=1 halfOpens=2 closed=1", tr)
	}
	if tr.FastFails == 0 {
		t.Fatal("no fast-fails recorded")
	}
	if err := b.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if got := b.OpenBreakers(); len(got) != 0 {
		t.Fatalf("open breakers %v, want none", got)
	}
}

// TestBreakerConsistency pins the transition accounting while a breaker
// is left open.
func TestBreakerConsistency(t *testing.T) {
	b := NewBreakerSet(BreakerConfig{FailThreshold: 1, Cooldown: 1000}, nil)
	b.Allow("floor")
	b.OnFailure("floor")
	if st := b.State("floor"); st != Open {
		t.Fatalf("state %v, want open", st)
	}
	if err := b.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if got := b.OpenBreakers(); len(got) != 1 || got[0] != "floor" {
		t.Fatalf("open breakers %v, want [floor]", got)
	}
}
