package chaos

// RetryPolicy parameterizes the typed retry loop in Layer. Backoff is
// exponential with deterministic, seeded jitter: the delay before
// transport attempt k (k >= 1 retries) is
//
//	min(BackoffCap, BackoffBase << (k-1)) * (0.5 + jitter)
//
// where jitter in [0, 0.5) is a pure function of (seed, process,
// service, attempt), so the entire retry schedule of a run is
// reproducible from its seed.
type RetryPolicy struct {
	// MaxAttempts bounds transport attempts per InvokeResilient call
	// (first try included). Default 5.
	MaxAttempts int
	// BackoffBase is the pre-jitter delay in virtual ticks before the
	// first retry. Default 2.
	BackoffBase int64
	// BackoffCap caps the pre-jitter exponential delay. Default 64.
	BackoffCap int64
	// Deadline bounds the total virtual latency (injected latency plus
	// backoff) one InvokeResilient call may accumulate; once exceeded,
	// no further retries are attempted. Default 256.
	Deadline int64
	// ProcessBudget bounds transport-level retries per process across
	// its whole execution (retry budget). The first attempt of each
	// call is free, so exhaustion can never starve an activity outright
	// — it only stops the layer from masking failures, surfacing them
	// to the scheduler instead. Default 32.
	ProcessBudget int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 2
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = 64
	}
	if p.Deadline == 0 {
		p.Deadline = 256
	}
	if p.ProcessBudget == 0 {
		p.ProcessBudget = 32
	}
	return p
}

// Backoff exposes the seeded jittered retry schedule for transports
// that reconnect outside the Layer's retry loop — the federation
// client's hub-redial storm after a hub restart reuses it so reconnect
// timing stays deterministic under a test seed. Zero-value fields take
// the same defaults as the internal loop.
func (p RetryPolicy) Backoff(plan Plan, proc, service string, retryIdx int) int64 {
	return p.withDefaults().backoff(plan, proc, service, retryIdx)
}

// backoff returns the jittered delay in virtual ticks before retry
// number retryIdx (1-based) of the (proc, service) invocation, under
// the plan seed. Deterministic: same inputs, same schedule.
func (p RetryPolicy) backoff(plan Plan, proc, service string, retryIdx int) int64 {
	base := p.BackoffBase
	for i := 1; i < retryIdx; i++ {
		base <<= 1
		if base >= p.BackoffCap {
			base = p.BackoffCap
			break
		}
	}
	if base > p.BackoffCap {
		base = p.BackoffCap
	}
	// jitter in [0.5, 1.0): deterministic per (seed, proc, service, retry).
	j := 0.5 + unit(plan.hashAt(proc, service, int64(retryIdx), 0x0b0f))/2
	d := int64(float64(base) * j)
	if d < 1 {
		d = 1
	}
	return d
}
