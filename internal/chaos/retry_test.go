package chaos

import (
	"math/rand"
	"testing"
)

// TestBackoffDeterministic property-tests backoff determinism: for
// random policies, seeds and call sites, the same inputs always produce
// the identical retry schedule, delays grow up to the cap, and changing
// the seed changes the jitter.
func TestBackoffDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		pol := RetryPolicy{
			MaxAttempts: 2 + rng.Intn(6),
			BackoffBase: int64(1 + rng.Intn(8)),
			BackoffCap:  int64(16 + rng.Intn(128)),
		}.withDefaults()
		plan := Plan{Seed: rng.Int63()}
		proc := string(rune('A' + rng.Intn(26)))
		svc := string(rune('a' + rng.Intn(26)))

		var sched1, sched2 []int64
		for k := 1; k <= pol.MaxAttempts; k++ {
			sched1 = append(sched1, pol.backoff(plan, proc, svc, k))
			sched2 = append(sched2, pol.backoff(plan, proc, svc, k))
		}
		for k := range sched1 {
			if sched1[k] != sched2[k] {
				t.Fatalf("trial %d: retry %d delay %d then %d — not deterministic", trial, k+1, sched1[k], sched2[k])
			}
			if sched1[k] < 1 {
				t.Fatalf("trial %d: retry %d delay %d < 1", trial, k+1, sched1[k])
			}
			if sched1[k] > pol.BackoffCap {
				t.Fatalf("trial %d: retry %d delay %d exceeds cap %d", trial, k+1, sched1[k], pol.BackoffCap)
			}
		}

	}
}

// TestBackoffSeedSensitivity pins that the jitter actually depends on
// the seed: with a wide backoff window the chance of two seeds agreeing
// on a whole 8-retry schedule is negligible.
func TestBackoffSeedSensitivity(t *testing.T) {
	pol := RetryPolicy{BackoffBase: 32, BackoffCap: 4096, MaxAttempts: 8}.withDefaults()
	a, b := Plan{Seed: 1}, Plan{Seed: 2}
	differs := false
	for k := 1; k <= 8; k++ {
		if pol.backoff(a, "P", "s", k) != pol.backoff(b, "P", "s", k) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("8-retry schedules identical under different seeds; jitter ignores the seed")
	}
}

// TestBackoffGrowth pins the exponential shape under zero-jitter
// comparison: the pre-jitter envelope doubles until the cap, and the
// jittered delay stays within [base/2, base).
func TestBackoffGrowth(t *testing.T) {
	pol := RetryPolicy{BackoffBase: 4, BackoffCap: 32, MaxAttempts: 8}.withDefaults()
	plan := Plan{Seed: 99}
	envelope := []int64{4, 8, 16, 32, 32, 32, 32, 32}
	for k := 1; k <= 8; k++ {
		d := pol.backoff(plan, "P", "s", k)
		hi := envelope[k-1]
		lo := hi / 2
		if d < lo || d >= hi {
			t.Errorf("retry %d: delay %d outside [%d, %d)", k, d, lo, hi)
		}
	}
}

// TestPolicyDefaults pins the zero-value policy resolution.
func TestPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 5 || p.BackoffBase != 2 || p.BackoffCap != 64 ||
		p.Deadline != 256 || p.ProcessBudget != 32 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}
