package chaos

import (
	"fmt"
	"sync"

	"transproc/internal/activity"
	"transproc/internal/metrics"
	"transproc/internal/subsystem"
)

// LayerStats aggregates what the retry layer did.
type LayerStats struct {
	Invokes          int64 // InvokeResilient calls
	Retries          int64 // transport-level retries performed
	RepliesRecovered int64 // timeouts resolved to success via the idem table
	BudgetExhausted  int64 // retries denied by an exhausted process budget
	DeadlineStops    int64 // retries denied by the latency deadline
	FastFails        int64 // calls rejected by an open breaker
}

// Layer is the typed retry policy engine: it implements
// subsystem.ResilientInvoker over a flaky Transport, a BreakerSet and a
// RetryPolicy. Only retriable-class activities (GuaranteedToCommit per
// the paper's typing) are retried at the transport level; transport
// failures of pivot and compensatable activities surface immediately so
// the scheduler can steer onto the next ◁ alternative or start backward
// recovery.
type Layer struct {
	transport *Transport
	breakers  *BreakerSet
	policy    RetryPolicy
	reg       *metrics.Registry

	mu     sync.Mutex
	budget map[string]int // remaining retry budget per process
	stats  LayerStats
}

// NewLayer wires a resilience layer over the federation. reg may be
// nil.
func NewLayer(fed *subsystem.Federation, plan Plan, policy RetryPolicy, bcfg BreakerConfig, reg *metrics.Registry) *Layer {
	return &Layer{
		transport: NewTransport(fed, plan, reg),
		breakers:  NewBreakerSet(bcfg, reg),
		policy:    policy.withDefaults(),
		reg:       reg,
		budget:    make(map[string]int),
	}
}

// Transport exposes the flaky transport (battery assertions).
func (l *Layer) Transport() *Transport { return l.transport }

// Breakers exposes the breaker set (battery assertions).
func (l *Layer) Breakers() *BreakerSet { return l.breakers }

// Stats returns a snapshot of the layer counters.
func (l *Layer) Stats() LayerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// StuckBreakers lists subsystems whose breaker is non-closed even
// though the most recent delivery to them succeeded — i.e. breakers
// that should have closed and did not. A breaker that is open because
// the subsystem genuinely failed last is not stuck.
func (l *Layer) StuckBreakers() []string {
	var stuck []string
	for _, sub := range l.breakers.OpenBreakers() {
		if !l.transport.LastDeliveryFailed(sub) {
			stuck = append(stuck, sub)
		}
	}
	return stuck
}

// takeRetry consumes one unit of the process's retry budget, reporting
// whether any was left.
func (l *Layer) takeRetry(proc string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	rem, ok := l.budget[proc]
	if !ok {
		rem = l.policy.ProcessBudget
	}
	if rem <= 0 {
		return false
	}
	l.budget[proc] = rem - 1
	return true
}

// InvokeResilient implements subsystem.ResilientInvoker: it drives the
// keyed invocation through the flaky transport under the breaker and
// the typed retry policy, and surfaces only outcomes the engines
// already handle (see the interface contract in internal/subsystem).
func (l *Layer) InvokeResilient(proc, service string, kind activity.Kind, mode subsystem.Mode, key string) (*subsystem.Result, int64, error) {
	l.mu.Lock()
	l.stats.Invokes++
	l.mu.Unlock()

	subName := service
	if sub, ok := l.transport.Federation().Owner(service); ok {
		subName = sub.Name()
	}

	var lat int64
	attempts := 0
	for {
		ok, _ := l.breakers.Allow(subName)
		if !ok {
			// Fail fast: the breaker is open. Surfacing a transient
			// invocation failure makes the scheduler treat the activity
			// as failed — retriable activities bounce and are re-invoked
			// (each bounce advances the breaker's cooldown clock), and
			// pivot/compensatable failures steer the process onto its
			// next ◁ alternative instead of stalling on a dead
			// subsystem.
			l.mu.Lock()
			l.stats.FastFails++
			l.mu.Unlock()
			l.observe(attempts, lat)
			return nil, lat, &subsystem.SubsystemError{
				Subsystem: subName, Service: service,
				Kind: subsystem.ErrTransient, Detail: "circuit open",
			}
		}
		attempts++

		res, alat, err := l.transport.Invoke(key, proc, service, mode)
		lat += alat
		if err == nil || subsystem.FailureKind(err) == subsystem.ErrLocked ||
			subsystem.FailureKind(err) == subsystem.ErrAborted {
			// The subsystem answered: success, lock conflict, or a
			// genuine local abort. All three mean the transport works.
			l.breakers.OnSuccess(subName)
			l.observe(attempts, lat)
			return res, lat, err
		}

		// Transport-level failure (transient or timeout).
		l.breakers.OnFailure(subName)
		if subsystem.FailureKind(err) == subsystem.ErrTimeout {
			// Resolve the execute/lost ambiguity through the reliable
			// control plane before anything else: if the invocation
			// executed and only the reply was lost, its outcome is
			// recorded under our key and surfacing a failure would
			// orphan a prepared transaction.
			if rec, found := l.transport.Lookup(service, key); found {
				l.mu.Lock()
				l.stats.RepliesRecovered++
				l.mu.Unlock()
				l.reg.Inc(metrics.RepliesRecovered)
				l.breakers.OnSuccess(subName)
				l.observe(attempts, lat)
				return rec, lat, nil
			}
		}

		// Typed retry: only activities that are guaranteed to commit
		// (retriable, compensation) may be re-sent by the layer; a
		// failed pivot or compensatable invocation is a scheduling
		// decision the paper assigns to the process layer (◁
		// alternatives, backward recovery), not the transport.
		if !kind.GuaranteedToCommit() {
			l.observe(attempts, lat)
			return nil, lat, err
		}
		if attempts >= l.policy.MaxAttempts {
			l.observe(attempts, lat)
			return nil, lat, err
		}
		if lat >= l.policy.Deadline {
			l.mu.Lock()
			l.stats.DeadlineStops++
			l.mu.Unlock()
			l.observe(attempts, lat)
			return nil, lat, err
		}
		if !l.takeRetry(proc) {
			l.mu.Lock()
			l.stats.BudgetExhausted++
			l.mu.Unlock()
			l.reg.Inc(metrics.RetryBudgetExhausted)
			l.observe(attempts, lat)
			return nil, lat, err
		}
		lat += l.policy.backoff(l.transport.plan, proc, service, attempts)
		l.mu.Lock()
		l.stats.Retries++
		l.mu.Unlock()
		l.reg.Inc(metrics.TransportRetries)
	}
}

// observe records per-invoke histogram samples.
func (l *Layer) observe(attempts int, lat int64) {
	l.reg.Observe(metrics.HistRetryAttempts, int64(attempts))
	if lat > 0 {
		l.reg.Observe(metrics.HistRetryLatency, lat)
	}
}

// CheckConsistent runs the layer's internal-accounting invariants
// (battery hook).
func (l *Layer) CheckConsistent() error {
	if err := l.breakers.CheckConsistent(); err != nil {
		return err
	}
	ts := l.transport.Stats()
	if ts.Delivered > ts.Attempts {
		return fmt.Errorf("transport accounting broken: delivered=%d > attempts=%d", ts.Delivered, ts.Attempts)
	}
	return nil
}
