package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func randomRecord(rng *rand.Rand) Record {
	return Record{
		Type:      RecType(rng.Intn(int(RecTerminate) + 1)),
		Proc:      []string{"P1", "P2", "W7+r2"}[rng.Intn(3)],
		Local:     rng.Intn(9),
		Service:   []string{"", "svc", "svc⁻¹"}[rng.Intn(3)],
		Subsystem: []string{"", "rm0"}[rng.Intn(2)],
		Tx:        rng.Int63n(100),
		Outcome:   []string{"", "committed", "aborted", "prepared"}[rng.Intn(4)],
		Committed: rng.Intn(2) == 0,
		Commit:    rng.Intn(2) == 0,
	}
}

// Property: a file-backed log returns exactly the records appended, in
// order, with sequential LSNs — including across a close/reopen.
func TestPropertyFileLogRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	n := 0
	f := func(seed int64, countRaw uint8) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "wal", string(rune('a'+n%26))+".jsonl")
		_ = path
		path = filepath.Join(dir, "log"+string(rune('a'+n%26))+string(rune('a'+(n/26)%26))+".jsonl")
		l, err := OpenFile(path, false)
		if err != nil {
			t.Log(err)
			return false
		}
		count := int(countRaw%32) + 1
		var want []Record
		for i := 0; i < count; i++ {
			r := randomRecord(rng)
			lsn, err := l.Append(r)
			if err != nil {
				t.Log(err)
				return false
			}
			r.LSN = lsn
			want = append(want, r)
		}
		if err := l.Close(); err != nil {
			t.Log(err)
			return false
		}
		l2, err := OpenFile(path, false)
		if err != nil {
			t.Log(err)
			return false
		}
		defer l2.Close()
		got, err := l2.Records()
		if err != nil {
			t.Log(err)
			return false
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			return false
		}
		for i, r := range got {
			if r.LSN != int64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Analyze is a pure function of the record sequence (same
// input, same images) and never reports a process as both terminated
// and holding unresolved prepared transactions after a decision +
// complete resolution.
func TestPropertyAnalyzeDeterministic(t *testing.T) {
	t.Parallel()
	f := func(seed int64, countRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var recs []Record
		for i := 0; i < int(countRaw%48)+1; i++ {
			recs = append(recs, randomRecord(rng))
		}
		a, err1 := Analyze(recs)
		b, err2 := Analyze(recs)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: for EVERY byte-prefix of a valid log file — any point a
// crash could cut the file at — OpenFile succeeds, yields exactly the
// complete newline-terminated records contained in the prefix (at most
// the final partial record is dropped), and a subsequent append is
// durable across a reopen.
func TestPropertyEveryBytePrefixRecovers(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	full := filepath.Join(dir, "full.jsonl")
	l, err := OpenFile(full, false)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 6; i++ {
		r := randomRecord(rng)
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		r.LSN = lsn
		want = append(want, r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Complete records at cut k = number of newline-terminated lines
	// fully inside data[:k].
	completeAt := func(k int) int {
		n := 0
		for _, b := range data[:k] {
			if b == '\n' {
				n++
			}
		}
		return n
	}
	for k := 0; k <= len(data); k++ {
		path := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(path, data[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		pl, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("cut %d: open: %v", k, err)
		}
		got, err := pl.Records()
		if err != nil {
			t.Fatalf("cut %d: records: %v", k, err)
		}
		wantN := completeAt(k)
		if len(got) != wantN {
			t.Fatalf("cut %d: %d records, want %d", k, len(got), wantN)
		}
		if wantN > 0 && !reflect.DeepEqual(got, want[:wantN]) {
			t.Fatalf("cut %d: surviving records differ from the appended prefix", k)
		}
		if _, err := pl.Append(Record{Type: RecStart, Proc: "post-crash"}); err != nil {
			t.Fatalf("cut %d: append: %v", k, err)
		}
		if err := pl.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", k, err)
		}
		re, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", k, err)
		}
		again, err := re.Records()
		re.Close()
		if err != nil {
			t.Fatalf("cut %d: records after reopen: %v", k, err)
		}
		if len(again) != wantN+1 || again[len(again)-1].Proc != "post-crash" {
			t.Fatalf("cut %d: post-crash append not durable (%d records)", k, len(again))
		}
	}
}

// Property: MemLog and FileLog agree on the visible record sequence for
// the same appends.
func TestPropertyMemFileEquivalence(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	n := 0
	f := func(seed int64, countRaw uint8) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		mem := NewMemLog()
		file, err := OpenFile(filepath.Join(dir, "eq"+string(rune('a'+n%26))+string(rune('a'+(n/26)%26))+".jsonl"), false)
		if err != nil {
			return false
		}
		defer file.Close()
		for i := 0; i < int(countRaw%24)+1; i++ {
			r := randomRecord(rng)
			if _, err := mem.Append(r); err != nil {
				return false
			}
			if _, err := file.Append(r); err != nil {
				return false
			}
		}
		a, _ := mem.Records()
		b, _ := file.Records()
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
