// Fuzzy checkpointing and log compaction. A checkpoint record
// summarizes everything the log said before its horizon — the full
// record set of every live process, the per-service effect counts of
// terminated work, and the serialization edges terminated processes
// mediated — so that recovery can replay checkpoint + tail instead of
// the whole history, and compaction can rewrite the log to exactly
// that. The checkpoint is fuzzy in the ARIES sense: appends may race
// the build, and any record whose LSN lies past the horizon is simply
// replayed from the tail regardless of where it sits in the file.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"transproc/internal/metrics"
)

// Crash points fired inside checkpointing and compaction when an
// inject hook is supplied (mirroring internal/fault's naming scheme;
// the constants live here so the fault package can reference them
// without a dependency cycle).
const (
	// PointCheckpointBuild fires before the checkpoint is built from
	// the log snapshot; PointCheckpointAppend after the build, right
	// before the checkpoint record is appended.
	PointCheckpointBuild  = "wal:ckpt-build"
	PointCheckpointAppend = "wal:ckpt-append"
	// PointCompactRename fires after the compacted temp file is
	// written and fsynced, right before the atomic rename;
	// PointCompactDirSync between the rename and the parent-directory
	// fsync that makes it durable.
	PointCompactRename  = "wal:compact-rename"
	PointCompactDirSync = "wal:compact-dirsync"
)

// maxCheckpointGraphEvents bounds the pairwise conflict-graph
// construction of BuildCheckpoint. A build over more committed events
// than this skips the Edges/Shadow computation (marking the checkpoint
// Truncated) instead of going quadratic; recovery then falls back to
// the tie-break order for forward steps whose ordering constraints ran
// through summarized processes. Engine-driven checkpoints (every
// CheckpointEvery appends, folding the previous checkpoint) stay far
// below this bound.
const maxCheckpointGraphEvents = 4096

// Checkpoint is the payload of a RecCheckpoint record: a fuzzy summary
// of the log up to Horizon.
type Checkpoint struct {
	// Horizon is the highest LSN the checkpoint covers. Every record
	// with a larger LSN — wherever it sits in the file, including the
	// fuzzy window between the build's snapshot and the checkpoint
	// append — must be replayed from the tail.
	Horizon int64 `json:"horizon"`
	// Live holds every record (≤ Horizon) of every process that had
	// not terminated at the horizon, verbatim and in log order, so
	// recovery rebuilds live instances exactly as a full replay would.
	Live []Record `json:"live,omitempty"`
	// AppliedSvc counts, per service, the committed invocations of
	// processes that had terminated at the horizon (compensations count
	// under the compensation service's own name). It replaces the
	// dropped records in the exactly-once accounting.
	AppliedSvc map[string]int64 `json:"applied,omitempty"`
	// Edges is the live×live reachability closure of the commit
	// serialization graph at the horizon: [P, Q] means some chain of
	// conflicting committed activities — possibly running through
	// processes summarized away — orders P before Q.
	Edges [][2]string `json:"edges,omitempty"`
	// Shadow maps each live process to the committed services of
	// summarized (terminated) processes reachable from it; at recovery
	// a conflict between a shadow service and a post-horizon event or a
	// forward completion step re-creates the transitive edge.
	Shadow map[string][]string `json:"shadow,omitempty"`
	// Procs is the live process count; Dropped the number of records
	// the checkpoint summarized away (cumulative across checkpoints).
	Procs   int `json:"procs"`
	Dropped int `json:"dropped"`
	// Truncated marks a build that skipped the Edges/Shadow graph
	// because it exceeded maxCheckpointGraphEvents.
	Truncated bool `json:"truncated,omitempty"`
}

// valid is the structural acceptance test recovery applies before
// trusting a decoded checkpoint; a checkpoint that fails it is ignored
// and recovery falls back to the previous checkpoint or a full replay.
func (c *Checkpoint) valid() bool {
	if c == nil || c.Horizon < 0 {
		return false
	}
	for _, r := range c.Live {
		if r.LSN <= 0 || r.LSN > c.Horizon || r.Type == RecCheckpoint {
			return false
		}
	}
	for _, n := range c.AppliedSvc {
		if n < 0 {
			return false
		}
	}
	return true
}

// Expansion is the replay view Expand derives from a raw record list.
type Expansion struct {
	// Records is what recovery replays: the latest valid checkpoint's
	// live records followed by every non-checkpoint record past the
	// horizon, in log order. Without a usable checkpoint it is simply
	// every non-checkpoint record.
	Records []Record
	// Checkpoint is the checkpoint the view is based on; nil means
	// full replay.
	Checkpoint *Checkpoint
	// Skipped counts the records the checkpoint summarized away
	// (replay work avoided relative to a full-history replay).
	Skipped int
	// Fallback is set when a checkpoint record was present but invalid
	// or undecodable, forcing the fall back to an earlier checkpoint or
	// a full replay.
	Fallback bool
}

// Expand turns a raw record list (as returned by Log.Records, from a
// compacted or uncompacted log) into the bounded replay view. It never
// fails: a corrupt checkpoint only widens the replay window.
func Expand(recs []Record) Expansion {
	var exp Expansion
	var cp *Checkpoint
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Type != RecCheckpoint {
			continue
		}
		if recs[i].Checkpoint.valid() {
			cp = recs[i].Checkpoint
			break
		}
		exp.Fallback = true
	}
	if cp == nil {
		for _, r := range recs {
			if r.Type != RecCheckpoint {
				exp.Records = append(exp.Records, r)
			}
		}
		return exp
	}
	exp.Checkpoint = cp
	exp.Skipped = cp.Dropped
	exp.Records = append(exp.Records, cp.Live...)
	for _, r := range recs {
		if r.Type != RecCheckpoint && r.LSN > cp.Horizon {
			exp.Records = append(exp.Records, r)
		}
	}
	return exp
}

// BuildCheckpoint computes a fuzzy checkpoint over a log snapshot,
// folding any earlier checkpoint the snapshot contains. conflicts is
// the federation's service conflict predicate (used for the Edges and
// Shadow serialization summaries); nil skips the graph entirely.
func BuildCheckpoint(recs []Record, conflicts func(a, b string) bool) *Checkpoint {
	exp := Expand(recs)
	base, old := exp.Records, exp.Checkpoint
	cp := &Checkpoint{AppliedSvc: make(map[string]int64)}
	for _, r := range recs {
		if r.LSN > cp.Horizon {
			cp.Horizon = r.LSN
		}
	}

	terminated := make(map[string]bool)
	known := make(map[string]bool)
	for _, r := range base {
		if r.Proc == "" {
			continue
		}
		known[r.Proc] = true
		if r.Type == RecTerminate {
			terminated[r.Proc] = true
		}
	}
	live := func(proc string) bool { return known[proc] && !terminated[proc] }

	for _, r := range base {
		if live(r.Proc) {
			cp.Live = append(cp.Live, r)
		}
	}

	// Exactly-once accounting for the records being summarized: one
	// count per committed (proc, local) — a redo-commit's RecResolved
	// does not double a committed outcome already in the log — plus
	// every compensation under its own service.
	counted := make(map[string]bool)
	for _, r := range base {
		if live(r.Proc) {
			continue
		}
		switch {
		case r.Type == RecCompensate:
			cp.AppliedSvc[r.Service]++
		case (r.Type == RecOutcome && r.Outcome == "committed") ||
			(r.Type == RecResolved && r.Commit):
			key := fmt.Sprintf("%s/%d", r.Proc, r.Local)
			if !counted[key] {
				counted[key] = true
				cp.AppliedSvc[r.Service]++
			}
		}
	}
	if old != nil {
		for svc, n := range old.AppliedSvc {
			cp.AppliedSvc[svc] += n
		}
		cp.Truncated = old.Truncated
	}

	for p := range known {
		if !terminated[p] {
			cp.Procs++
		}
	}
	cp.Dropped = len(base) - len(cp.Live) + exp.Skipped

	if conflicts != nil {
		buildCheckpointGraph(cp, base, old, live, conflicts)
	}
	return cp
}

// buildCheckpointGraph computes Edges (live×live reachability through
// the commit serialization graph) and Shadow (summarized committed
// services reachable from each live process). Committed events sit at
// their commit position and compensated bases no longer constrain —
// the same event set commitSerializationRanks derives at recovery.
func buildCheckpointGraph(cp *Checkpoint, base []Record, old *Checkpoint, live func(string) bool, conflicts func(a, b string) bool) {
	type cpEv struct {
		proc, svc string
		lsn       int64
	}
	compensated := make(map[string]bool)
	for _, r := range base {
		if r.Type == RecCompensate {
			compensated[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = true
		}
	}
	var evs []cpEv
	emitted := make(map[string]bool)
	for _, r := range base {
		committed := (r.Type == RecOutcome && r.Outcome == "committed") ||
			(r.Type == RecResolved && r.Commit)
		key := fmt.Sprintf("%s/%d", r.Proc, r.Local)
		if !committed || compensated[key] || emitted[key] {
			continue
		}
		emitted[key] = true
		evs = append(evs, cpEv{proc: r.Proc, svc: r.Service, lsn: r.LSN})
	}
	if len(evs) > maxCheckpointGraphEvents {
		cp.Truncated = true
		if old != nil {
			cp.Edges = old.Edges
			cp.Shadow = old.Shadow
		}
		return
	}

	succ := make(map[string]map[string]bool)
	addEdge := func(a, b string) {
		if a == b {
			return
		}
		if succ[a] == nil {
			succ[a] = make(map[string]bool)
		}
		succ[a][b] = true
	}
	// Direct edges: an earlier committed event conflicting with a later
	// one orders the processes. perSvc keeps, per service, the set of
	// processes that have emitted it so far — O(events × services)
	// instead of O(events²).
	perSvc := make(map[string]map[string]bool)
	for _, e := range evs {
		for svc, procs := range perSvc {
			if !conflicts(svc, e.svc) {
				continue
			}
			for p := range procs {
				addEdge(p, e.proc)
			}
		}
		if perSvc[e.svc] == nil {
			perSvc[e.svc] = make(map[string]bool)
		}
		perSvc[e.svc][e.proc] = true
	}
	// Fold the previous checkpoint: its closure edges become direct
	// edges, and its shadow services conflict-check against the events
	// it could not see (past its horizon).
	if old != nil {
		for _, ed := range old.Edges {
			addEdge(ed[0], ed[1])
		}
		for p, svcs := range old.Shadow {
			for _, s := range svcs {
				for _, e := range evs {
					if e.lsn > old.Horizon && conflicts(s, e.svc) {
						addEdge(p, e.proc)
					}
				}
			}
		}
	}

	// Committed services of the processes being summarized away.
	termSvc := make(map[string]map[string]bool)
	for _, e := range evs {
		if live(e.proc) {
			continue
		}
		if termSvc[e.proc] == nil {
			termSvc[e.proc] = make(map[string]bool)
		}
		termSvc[e.proc][e.svc] = true
	}
	oldShadow := map[string][]string{}
	if old != nil {
		oldShadow = old.Shadow
	}

	var liveProcs []string
	seen := make(map[string]bool)
	collect := func(p string) {
		if !seen[p] && live(p) {
			seen[p] = true
			liveProcs = append(liveProcs, p)
		}
	}
	for _, e := range evs {
		collect(e.proc)
	}
	for _, r := range base {
		if r.Proc != "" {
			collect(r.Proc)
		}
	}
	sort.Strings(liveProcs)

	shadow := make(map[string][]string)
	for _, p := range liveProcs {
		reach := make(map[string]bool)
		queue := []string{p}
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			for n := range succ[q] {
				if !reach[n] {
					reach[n] = true
					queue = append(queue, n)
				}
			}
		}
		svcSet := make(map[string]bool)
		for _, s := range oldShadow[p] {
			svcSet[s] = true
		}
		var targets []string
		for q := range reach {
			if live(q) {
				targets = append(targets, q)
				for _, s := range oldShadow[q] {
					svcSet[s] = true
				}
				continue
			}
			for s := range termSvc[q] {
				svcSet[s] = true
			}
			for _, s := range oldShadow[q] {
				svcSet[s] = true
			}
		}
		sort.Strings(targets)
		for _, q := range targets {
			cp.Edges = append(cp.Edges, [2]string{p, q})
		}
		if len(svcSet) > 0 {
			svcs := make([]string, 0, len(svcSet))
			for s := range svcSet {
				svcs = append(svcs, s)
			}
			sort.Strings(svcs)
			shadow[p] = svcs
		}
	}
	if len(shadow) > 0 {
		cp.Shadow = shadow
	}
}

// TakeCheckpoint snapshots the log, builds a fuzzy checkpoint and
// appends its record. inject, when non-nil, fires the named crash
// points around the build and the append; m records the checkpoint
// counters (nil is a no-op).
func TakeCheckpoint(l Log, conflicts func(a, b string) bool, inject func(string), m *metrics.Registry) (*Checkpoint, error) {
	if inject != nil {
		inject(PointCheckpointBuild)
	}
	recs, err := l.Records()
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	cp := BuildCheckpoint(recs, conflicts)
	if inject != nil {
		inject(PointCheckpointAppend)
	}
	if _, err := l.Append(Record{Type: RecCheckpoint, Checkpoint: cp}); err != nil {
		return nil, fmt.Errorf("wal: appending checkpoint: %w", err)
	}
	m.Inc(metrics.Checkpoints)
	m.Observe(metrics.HistCheckpointLive, int64(len(cp.Live)))
	return cp, nil
}

// Compactor is a log that can atomically rewrite itself as its latest
// checkpoint plus the post-horizon tail, truncating summarized
// history. inject, when non-nil, fires the compaction crash points.
type Compactor interface {
	Compact(inject func(point string)) error
}

// Compact implements Compactor: the in-memory record list is replaced
// by [latest valid checkpoint record, post-horizon tail]. A log
// without a usable checkpoint is left untouched.
func (l *MemLog) Compact(inject func(string)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := latestCheckpoint(l.recs)
	if idx < 0 {
		return nil
	}
	cp := l.recs[idx].Checkpoint
	kept := []Record{l.recs[idx]}
	for _, r := range l.recs {
		if r.Type != RecCheckpoint && r.LSN > cp.Horizon {
			kept = append(kept, r)
		}
	}
	if inject != nil {
		inject(PointCompactRename)
		inject(PointCompactDirSync)
	}
	l.recs = kept
	l.m.Inc(metrics.Compactions)
	return nil
}

// Compact implements Compactor: the file is rewritten as [latest valid
// checkpoint record, post-horizon tail] via temp file → fsync → rename
// → parent-directory fsync, so a crash at any point leaves either the
// old complete log or the new complete log. The LSN counter is
// preserved (compaction renumbers nothing; the log simply gains a
// gap). A log without a usable checkpoint is left untouched.
func (l *FileLog) Compact(inject func(string)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: compact flush: %w", err)
	}
	recs, err := l.readLocked()
	if err != nil {
		return err
	}
	idx := latestCheckpoint(recs)
	if idx < 0 {
		return nil
	}
	cp := recs[idx].Checkpoint
	kept := []Record{recs[idx]}
	for _, r := range recs {
		if r.Type != RecCheckpoint && r.LSN > cp.Horizon {
			kept = append(kept, r)
		}
	}

	tmp := l.path + ".compact"
	os.Remove(tmp) // a crashed earlier compaction may have left one
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact temp: %w", err)
	}
	bw := bufio.NewWriter(tf)
	for _, r := range kept {
		b, err := json.Marshal(r)
		if err != nil {
			tf.Close()
			return fmt.Errorf("wal: compact marshal: %w", err)
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			tf.Close()
			return fmt.Errorf("wal: compact write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		tf.Close()
		return fmt.Errorf("wal: compact flush temp: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("wal: compact fsync temp: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("wal: compact close temp: %w", err)
	}
	if inject != nil {
		inject(PointCompactRename)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("wal: compact rename: %w", err)
	}
	if inject != nil {
		inject(PointCompactDirSync)
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		return err
	}
	// The open descriptor still references the replaced inode: swap it
	// for the compacted file before any further append.
	nf, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening compacted log: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.w = bufio.NewWriter(nf)
	l.m.Inc(metrics.Compactions)
	return nil
}

// readLocked re-reads the decodable records of the file; the caller
// holds l.mu and has flushed the writer.
func (l *FileLog) readLocked() ([]Record, error) {
	if _, err := l.f.Seek(0, 0); err != nil {
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	var out []Record
	sc := bufio.NewScanner(l.f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			break
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	if _, err := l.f.Seek(0, 2); err != nil {
		return nil, fmt.Errorf("wal: seek end: %w", err)
	}
	return out, nil
}

// latestCheckpoint returns the index of the last structurally valid
// checkpoint record, or -1.
func latestCheckpoint(recs []Record) int {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Type == RecCheckpoint && recs[i].Checkpoint.valid() {
			return i
		}
	}
	return -1
}

// syncDir fsyncs a directory so a just-created or just-renamed file
// inside it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return d.Close()
}
