package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint
// expansion path: whatever checkpoint payload is on disk, OpenFile must
// come up, Expand must not panic, a corrupt checkpoint must only widen
// the replay window (fall back toward full replay, never drop
// post-horizon records or return an error), and Analyze over the
// expansion must not panic.
func FuzzCheckpointDecode(f *testing.F) {
	valid := `{"lsn":5,"type":9,"proc":"","ckpt":{"horizon":4,"live":[{"lsn":3,"type":0,"proc":"L1"}],"applied":{"a":1},"procs":1,"dropped":4}}`
	tail := `{"lsn":6,"type":0,"proc":"W9"}`
	f.Add([]byte(valid + "\n" + tail + "\n"))
	f.Add([]byte(valid[:40] + "\n" + tail + "\n"))
	f.Add([]byte(`{"lsn":5,"type":9,"ckpt":{"horizon":-3}}` + "\n" + tail + "\n"))
	f.Add([]byte(`{"lsn":5,"type":9,"ckpt":{"horizon":1,"live":[{"lsn":9,"type":0,"proc":"X"}]}}` + "\n" + tail + "\n"))
	f.Add([]byte(`{"lsn":5,"type":9,"ckpt":{"horizon":2,"applied":{"a":-7}}}` + "\n"))
	f.Add([]byte(`{"lsn":5,"type":9,"ckpt":"garbage"}` + "\n" + tail + "\n"))
	f.Add([]byte(`{"lsn":5,"type":9}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("OpenFile on arbitrary bytes: %v", err)
		}
		defer l.Close()
		recs, err := l.Records()
		if err != nil {
			t.Fatalf("Records after open: %v", err)
		}
		exp := Expand(recs)

		// The adopted checkpoint, if any, must be structurally valid.
		if exp.Checkpoint != nil && !exp.Checkpoint.valid() {
			t.Fatalf("Expand adopted an invalid checkpoint: %+v", exp.Checkpoint)
		}
		// No expansion result ever contains a checkpoint record.
		for _, r := range exp.Records {
			if r.Type == RecCheckpoint {
				t.Fatalf("checkpoint record leaked into the expansion: %+v", r)
			}
		}
		// Post-horizon records are sacred: every non-checkpoint record
		// past the adopted horizon (or every one, without a checkpoint)
		// must appear in the expansion, keyed by identical JSON.
		horizon := int64(-1 << 62)
		if exp.Checkpoint != nil {
			horizon = exp.Checkpoint.Horizon
		}
		have := make(map[string]int)
		for _, r := range exp.Records {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("marshaling expanded record: %v", err)
			}
			have[string(b)]++
		}
		for _, r := range recs {
			if r.Type == RecCheckpoint || r.LSN <= horizon {
				continue
			}
			b, _ := json.Marshal(r)
			if have[string(b)] <= 0 {
				t.Fatalf("post-horizon record dropped by expansion: %s", b)
			}
			have[string(b)]--
		}
		// Without a usable checkpoint the expansion IS the full replay,
		// order included.
		if exp.Checkpoint == nil {
			i := 0
			for _, r := range recs {
				if r.Type == RecCheckpoint {
					continue
				}
				if i >= len(exp.Records) {
					t.Fatalf("fallback expansion shorter than the non-checkpoint history")
				}
				a, _ := json.Marshal(exp.Records[i])
				b, _ := json.Marshal(r)
				if string(a) != string(b) {
					t.Fatalf("fallback expansion diverges at %d: %s != %s", i, a, b)
				}
				i++
			}
			if i != len(exp.Records) {
				t.Fatalf("fallback expansion has %d extra records", len(exp.Records)-i)
			}
		}
		// Analyze over the expansion must not panic (errors are fine).
		if _, err := Analyze(exp.Records); err != nil && err != ErrNoLog {
			_ = err
		}
	})
}
