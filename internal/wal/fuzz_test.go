package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the file log's open/replay
// path: whatever is on disk after a crash, OpenFile must come up (the
// torn tail truncated away, never an error for mere corruption),
// Records must return only decodable records, Analyze must not panic,
// and an append to the reopened log must be durable across a further
// reopen.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"lsn\":1,\"type\":0,\"proc\":\"W1\"}\n"))
	f.Add([]byte("{\"lsn\":1,\"type\":0,\"proc\":\"W1\"}\n{\"lsn\":2,\"type\":2,\"pr"))
	f.Add([]byte("garbage\n{\"lsn\":1,\"type\":0,\"proc\":\"W1\"}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add(bytes.Repeat([]byte{0xff, 0x00, '\n'}, 7))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("OpenFile on arbitrary bytes: %v", err)
		}
		recs, err := l.Records()
		if err != nil {
			t.Fatalf("Records after open: %v", err)
		}
		if _, err := Analyze(recs); err != nil && err != ErrNoLog {
			// Analyze may reject inconsistent logs, but only with its
			// sentinel or a descriptive error — reaching here is fine;
			// the fuzz target only guards against panics.
			_ = err
		}
		lsn, err := l.Append(Record{Type: RecStart, Proc: "fuzz"})
		if err != nil {
			t.Fatalf("Append after recovery open: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		re, err := OpenFile(path, false)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		again, err := re.Records()
		if err != nil {
			t.Fatalf("Records after reopen: %v", err)
		}
		if len(again) != len(recs)+1 {
			t.Fatalf("append not durable: %d records before, %d after", len(recs), len(again))
		}
		last := again[len(again)-1]
		if last.Proc != "fuzz" || last.LSN != lsn {
			t.Fatalf("appended record corrupted on replay: %+v", last)
		}
	})
}
