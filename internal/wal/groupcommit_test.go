package wal_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/wal"
)

// TestGroupCommitConcurrentNoAckedLost hammers the batching appender
// with concurrent writers while a checkpoint+compact loop runs against
// the same appender, then verifies (a) every acknowledged record is
// still replayable through wal.Expand — group commit must not lose or
// reorder acked records, and compaction must not eat them — and
// (b) the batch fsync count stayed below the append count (the whole
// point of group commit). Run under -race this also checks the
// leader/follower handoff and the io-vs-append interleaving.
func TestGroupCommitConcurrentNoAckedLost(t *testing.T) {
	const (
		writers = 8
		each    = 150
	)
	reg := metrics.New()
	inner, err := wal.OpenFile(filepath.Join(t.TempDir(), "wal.log"), true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ga := wal.NewGroupAppender(inner, wal.GroupCommit{MaxBatch: 32, MaxDelay: 200 * time.Microsecond}, nil)
	ga.SetMetrics(reg)

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proc := fmt.Sprintf("g%d", g)
			for i := 0; i < each; i++ {
				// Dispatch records of never-terminated processes: a
				// checkpoint keeps them verbatim in its Live set, so
				// compaction cannot legitimately drop any of them.
				lsn, err := ga.Append(wal.Record{Type: wal.RecDispatch, Proc: proc, Local: i, Service: "svc"})
				if err != nil {
					t.Errorf("append %s/%d: %v", proc, i, err)
					return
				}
				if lsn <= 0 {
					t.Errorf("append %s/%d: lsn %d", proc, i, lsn)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := wal.TakeCheckpoint(ga, nil, nil, reg); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			if err := ga.Compact(nil); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-ckptDone
	if t.Failed() {
		return
	}

	recs, err := ga.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	seen := make(map[string]bool)
	for _, r := range wal.Expand(recs).Records {
		if r.Type == wal.RecDispatch {
			seen[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = true
		}
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("g%d/%d", g, i)
			if !seen[key] {
				t.Errorf("acked record %s lost", key)
			}
		}
	}

	appends := reg.Counter(metrics.WALAppends)
	fsyncs := reg.Counter(metrics.WALFsyncs)
	if fsyncs >= appends {
		t.Errorf("group commit saved nothing: %d fsyncs for %d appends", fsyncs, appends)
	}
	if saved := reg.Counter(metrics.WALFsyncsSaved); saved <= 0 {
		t.Errorf("fsyncs-saved = %d, want > 0", saved)
	}
	if batches := reg.Counter(metrics.WALGroupBatches); batches <= 0 || batches >= appends {
		t.Errorf("batches = %d for %d appends, want 0 < batches < appends", batches, appends)
	}
	if err := ga.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGroupFsyncCrashLosesOnlyUnacked crashes a batch between its
// buffered write and the shared fsync (the wal:group-fsync point) and
// verifies the ack contract: every Append that returned without
// panicking is on disk after reopening the file; every goroutine
// whose record was caught in the doomed batch observes the crash
// sentinel from its own Append call.
func TestGroupFsyncCrashLosesOnlyUnacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	inner, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	inj := fault.NewInjector(fault.Plan{CrashAtPoint: fault.PointGroupFsync, CrashAtCount: 5})
	ga := wal.NewGroupAppender(inner, wal.GroupCommit{MaxBatch: 8, MaxDelay: 100 * time.Microsecond}, inj.Point)

	const writers = 6
	var (
		mu      sync.Mutex
		acked   = make(map[string]bool)
		crashes int
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proc := fmt.Sprintf("g%d", g)
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("%s/%d", proc, i)
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := fault.AsCrash(r); !ok {
								panic(r)
							}
							err = fmt.Errorf("crashed")
						}
					}()
					_, aerr := ga.Append(wal.Record{Type: wal.RecDispatch, Proc: proc, Local: i, Service: "svc"})
					return aerr
				}()
				mu.Lock()
				if err != nil {
					crashes++
					mu.Unlock()
					return // this writer's system crashed
				}
				acked[key] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if !inj.Tripped() {
		t.Fatalf("crash point never fired")
	}
	if crashes == 0 {
		t.Fatalf("no appender observed the crash sentinel")
	}

	// Recovery view: reopen the file fresh (the old handle's unflushed
	// buffer plays the page cache a real crash would lose).
	reopened, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	recs, err := reopened.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	onDisk := make(map[string]bool)
	for _, r := range recs {
		onDisk[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = true
	}
	for key := range acked {
		if !onDisk[key] {
			t.Errorf("acked record %s missing after crash", key)
		}
	}
}
