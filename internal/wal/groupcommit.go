package wal

import (
	"sync"
	"time"

	"transproc/internal/metrics"
)

// PointGroupFsync is the named crash point a group-commit flush fires
// between writing a batch to the backend and syncing it. A crash here
// must lose at most the records of the in-flight batch: none of them
// has been acknowledged yet (Append only returns after the shared
// fsync), so recovery sees a log that is merely a little shorter.
const PointGroupFsync = "wal:group-fsync"

// GroupCommit configures the batching appender. The zero value
// disables batching (engines then use the log directly).
type GroupCommit struct {
	// MaxBatch caps the records coalesced into one buffered write +
	// fsync. Positive enables group commit; values below 2 are
	// clamped to a sensible default.
	MaxBatch int
	// MaxDelay is how long a flush leader waits for a partially
	// filled batch to grow when other appenders are already queued
	// behind it. Zero flushes immediately with whatever is queued —
	// batching then comes only from appends that arrive while the
	// previous flush is syncing (classic group commit).
	MaxDelay time.Duration
}

// Enabled reports whether the configuration asks for batching.
func (g GroupCommit) Enabled() bool { return g.MaxBatch > 0 }

func (g GroupCommit) maxBatch() int {
	if g.MaxBatch < 2 {
		return 64
	}
	return g.MaxBatch
}

// BatchBackend is the two-phase append a group-commit leader prefers:
// buffer several records, then make them all durable with one Sync.
// Backends without it still work — the leader falls back to plain
// Append per record and the batch only saves lock round-trips.
type BatchBackend interface {
	// AppendNoSync writes a record (assigning its LSN) without forcing
	// it to stable storage.
	AppendNoSync(Record) (int64, error)
	// Sync makes everything appended so far durable.
	Sync() error
}

// pendingAppend is one caller's record waiting in the group-commit
// queue. done is closed by the flush leader once the outcome (lsn/err,
// or a crash sentinel to re-panic) is filled in.
type pendingAppend struct {
	rec   Record
	done  chan struct{}
	lsn   int64
	err   error
	crash any
}

// GroupAppender is a batching front end to a Log: concurrent Append
// calls are coalesced by a flush leader into one buffered write and a
// single fsync, and every caller's Append returns only after the
// shared fsync covered its record (no ack before durability). The
// first appender to find no leader running becomes the leader and
// drains the queue — including records that arrive while it is
// syncing — so under concurrency the fsync cost is paid once per batch
// instead of once per record.
//
// Crash injection: a sentinel panic raised inside the flush (from the
// backend's budget wrapper or from the PointGroupFsync hook) is caught
// by the leader, attached to every queued record, and re-raised from
// each blocked Append — every appending goroutine observes the crash
// in its own stack, exactly as if it had performed the append itself.
// After a crash the appender is inert: later Appends pass straight
// through to the (tripped, dropping) backend and nothing blocks.
//
// The appender implements Log, Instrumented and Compactor, so the
// engines can use it wherever they used the raw log — checkpointing
// and compaction keep hooking the single logical append stream.
type GroupAppender struct {
	inner  Log
	cfg    GroupCommit
	inject func(string)

	mu      sync.Mutex
	queue   []*pendingAppend
	leading bool
	crashed any // sticky crash sentinel; nil while healthy

	// io serializes batch writes against Records/Compact so a fuzzy
	// checkpoint never reads a half-written batch.
	io sync.Mutex

	m *metrics.Registry
}

// NewGroupAppender wraps a log with group commit. inject (may be nil)
// receives PointGroupFsync between the batch write and its fsync.
func NewGroupAppender(inner Log, cfg GroupCommit, inject func(string)) *GroupAppender {
	return &GroupAppender{inner: inner, cfg: cfg, inject: inject}
}

// Inner returns the wrapped log.
func (g *GroupAppender) Inner() Log { return g.inner }

// SetMetrics attaches a registry (batch counters here, append counters
// in the backend).
func (g *GroupAppender) SetMetrics(m *metrics.Registry) {
	g.mu.Lock()
	g.m = m
	g.mu.Unlock()
	if il, ok := g.inner.(Instrumented); ok {
		il.SetMetrics(m)
	}
}

// Append implements Log: enqueue, lead or follow, return after the
// batch containing the record was fsynced.
func (g *GroupAppender) Append(rec Record) (int64, error) {
	g.mu.Lock()
	if g.crashed != nil {
		g.mu.Unlock()
		return g.inner.Append(rec) // the tripped backend drops it
	}
	p := &pendingAppend{rec: rec, done: make(chan struct{})}
	g.queue = append(g.queue, p)
	lead := !g.leading
	if lead {
		g.leading = true
	}
	g.mu.Unlock()
	if lead {
		g.lead()
	}
	<-p.done
	if p.crash != nil {
		panic(p.crash)
	}
	return p.lsn, p.err
}

// lead drains the queue batch by batch until it is empty, then steps
// down. Exactly one leader runs at a time.
func (g *GroupAppender) lead() {
	max := g.cfg.maxBatch()
	waited := false
	for {
		g.mu.Lock()
		n := len(g.queue)
		if n == 0 {
			g.leading = false
			g.mu.Unlock()
			return
		}
		if !waited && n > 1 && n < max && g.cfg.MaxDelay > 0 {
			// Others are queued and the batch still has room: give
			// stragglers one MaxDelay window to join before syncing.
			g.mu.Unlock()
			time.Sleep(g.cfg.MaxDelay)
			waited = true
			continue
		}
		if n > max {
			n = max
		}
		batch := g.queue[:n:n]
		g.queue = g.queue[n:]
		waited = false
		g.mu.Unlock()
		if !g.flush(batch) {
			return
		}
	}
}

// flush writes one batch and releases its callers; it reports whether
// the appender is still healthy (false after a crash sentinel, which
// flush distributes to every queued record before stepping down).
func (g *GroupAppender) flush(batch []*pendingAppend) (ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// A crash fired mid-batch (backend budget, or the group-fsync
		// point). Nothing in this batch was acknowledged; hand every
		// waiter — this batch and everything still queued — the
		// sentinel so each goroutine crashes in its own stack.
		g.mu.Lock()
		g.crashed = r
		rest := g.queue
		g.queue = nil
		g.leading = false
		g.mu.Unlock()
		for _, p := range append(batch, rest...) {
			p.crash = r
			close(p.done)
		}
		ok = false
	}()

	g.io.Lock()
	defer g.io.Unlock()
	synced := false
	if bb, isBatch := g.inner.(BatchBackend); isBatch {
		for _, p := range batch {
			p.lsn, p.err = bb.AppendNoSync(p.rec)
		}
		if g.inject != nil {
			g.inject(PointGroupFsync)
		}
		if err := bb.Sync(); err != nil {
			for _, p := range batch {
				if p.err == nil {
					p.err = err
				}
			}
		}
		synced = true
	} else {
		for _, p := range batch {
			p.lsn, p.err = g.inner.Append(p.rec)
		}
		if g.inject != nil {
			g.inject(PointGroupFsync)
		}
	}
	g.mu.Lock()
	m := g.m
	g.mu.Unlock()
	m.Inc(metrics.WALGroupBatches)
	m.Observe(metrics.HistWALBatch, int64(len(batch)))
	if synced && len(batch) > 1 {
		m.Add(metrics.WALFsyncsSaved, int64(len(batch)-1))
	}
	for _, p := range batch {
		close(p.done)
	}
	return true
}

// Records implements Log; queued-but-unflushed records are not
// included (they are not durable and were never acknowledged).
func (g *GroupAppender) Records() ([]Record, error) {
	g.io.Lock()
	defer g.io.Unlock()
	return g.inner.Records()
}

// Close implements Log.
func (g *GroupAppender) Close() error {
	g.io.Lock()
	defer g.io.Unlock()
	return g.inner.Close()
}

// Compact forwards to a compaction-capable backend, serialized against
// in-flight batch writes.
func (g *GroupAppender) Compact(inject func(string)) error {
	g.io.Lock()
	defer g.io.Unlock()
	if c, ok := g.inner.(Compactor); ok {
		return c.Compact(inject)
	}
	return nil
}
