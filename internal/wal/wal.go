// Package wal provides the process scheduler's write-ahead log: every
// scheduling decision and termination is recorded before it takes
// effect, so that after a crash the recovery manager can reconstruct the
// state of every active process and execute the group abort
// A(P_{n_1} … P_{n_s}) of Definition 8.2b — completing B-REC processes
// backward and F-REC processes forward.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"transproc/internal/metrics"
)

// RecType classifies log records.
type RecType int

const (
	// RecStart: a process was admitted.
	RecStart RecType = iota
	// RecDispatch: an activity invocation was sent to a subsystem.
	RecDispatch
	// RecOutcome: an invocation terminated (committed, aborted or
	// prepared with a transaction id for later 2PC resolution).
	RecOutcome
	// RecCompensate: a compensating activity committed.
	RecCompensate
	// RecFailed: an activity failed permanently (Definition 4).
	RecFailed
	// RecAbortBegin: the abort A_i of a process began.
	RecAbortBegin
	// RecDecision: the 2PC commit decision for a process's prepared
	// transactions was taken (the atomic commit of all
	// non-compensatable activities, Section 3.5).
	RecDecision
	// RecResolved: one prepared transaction was committed or rolled
	// back at its subsystem.
	RecResolved
	// RecTerminate: the process terminated (C_i, or abort completion).
	RecTerminate
	// RecCheckpoint: a fuzzy checkpoint — the record carries a
	// Checkpoint payload summarizing everything before its horizon
	// (see checkpoint.go). Appended last so the on-disk numeric values
	// of the earlier types never change.
	RecCheckpoint
)

// String returns a short label.
func (t RecType) String() string {
	switch t {
	case RecStart:
		return "start"
	case RecDispatch:
		return "dispatch"
	case RecOutcome:
		return "outcome"
	case RecCompensate:
		return "compensate"
	case RecFailed:
		return "failed"
	case RecAbortBegin:
		return "abort-begin"
	case RecDecision:
		return "decision"
	case RecResolved:
		return "resolved"
	case RecTerminate:
		return "terminate"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecType(%d)", int(t))
	}
}

// Record is one log entry.
type Record struct {
	LSN       int64   `json:"lsn"`
	Type      RecType `json:"type"`
	Proc      string  `json:"proc"`
	Local     int     `json:"local,omitempty"`
	Service   string  `json:"service,omitempty"`
	Subsystem string  `json:"subsystem,omitempty"`
	Tx        int64   `json:"tx,omitempty"`
	// Outcome for RecOutcome: "committed", "aborted", "prepared".
	Outcome string `json:"outcome,omitempty"`
	// Committed for RecTerminate: regular C_i vs abort completion.
	Committed bool `json:"committed,omitempty"`
	// Commit for RecResolved: the prepared transaction was committed
	// (true) or rolled back (false).
	Commit bool `json:"commit,omitempty"`
	// Checkpoint is the payload of a RecCheckpoint record.
	Checkpoint *Checkpoint `json:"ckpt,omitempty"`
	// Stamp is the hub-issued global sequence number of a federation
	// record. Scheduler nodes log into per-node WALs; the stitcher
	// merges them into one global history by sorting on Stamp (every
	// state transition obtains its stamp inside the hub's serial
	// section, so stamps totally order the cross-node history).
	// Zero for single-node logs and for records appended by recovery.
	Stamp int64 `json:"stamp,omitempty"`
}

// Backend is the minimal append-only store a write-ahead log is built
// on. MemLog and FileLog are the default implementations; the interface
// is the seam for fault injection — a wrapper (internal/fault) can
// interpose on Append to simulate crashes and torn writes while
// delegating to a real backend underneath.
type Backend interface {
	// Append writes a record (assigning its LSN) and returns the LSN.
	Append(Record) (int64, error)
	// Records returns all records in order.
	Records() ([]Record, error)
	// Close releases resources.
	Close() error
}

// Log is an append-only record log. It is identical to Backend; the
// distinct name keeps the scheduler/2PC/recovery call sites decoupled
// from the injection seam.
type Log interface {
	Backend
}

// Instrumented is implemented by logs that can record append/fsync
// counters into a metrics registry.
type Instrumented interface {
	SetMetrics(*metrics.Registry)
}

// MemLog is an in-memory Log, useful for tests and simulations.
type MemLog struct {
	mu   sync.Mutex
	recs []Record
	next int64
	m    *metrics.Registry
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// SetMetrics attaches a registry; appends are counted into it.
func (l *MemLog) SetMetrics(m *metrics.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = m
}

// Append implements Log.
func (l *MemLog) Append(r Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	r.LSN = l.next
	l.recs = append(l.recs, r)
	l.m.Inc(metrics.WALAppends)
	return r.LSN, nil
}

// AppendNoSync implements BatchBackend; memory has no sync phase, so
// it is Append.
func (l *MemLog) AppendNoSync(r Record) (int64, error) { return l.Append(r) }

// Sync implements BatchBackend (no-op).
func (l *MemLog) Sync() error { return nil }

// Records implements Log.
func (l *MemLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...), nil
}

// Close implements Log.
func (l *MemLog) Close() error { return nil }

// FileLog is a JSON-lines file-backed Log.
type FileLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	next int64
	path string
	sync bool
	m    *metrics.Registry
}

// SetMetrics attaches a registry; appends, written bytes and fsyncs are
// counted into it.
func (l *FileLog) SetMetrics(m *metrics.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = m
}

// OpenFile opens (or creates) a file log at path. When syncEvery is
// true every append is flushed and fsynced — the write-ahead guarantee;
// false trades durability for speed in simulations.
//
// A torn tail (a final record left unterminated or undecodable by a
// crash mid-write) is truncated away on open, so that at most the final
// partial record is lost and subsequent appends never splice into
// garbage — the tail would otherwise shadow every later record from
// Records.
func OpenFile(path string, syncEvery bool) (*FileLog, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if created {
		// Make the new directory entry durable: without the parent-dir
		// fsync a freshly created (and even fsynced) log file can
		// vanish wholesale on power loss.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	recs, validEnd, err := scanValid(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek end: %w", err)
	}
	l := &FileLog{f: f, w: bufio.NewWriter(f), path: path, sync: syncEvery}
	if n := len(recs); n > 0 {
		l.next = recs[n-1].LSN
	}
	return l, nil
}

// scanValid reads the decodable newline-terminated prefix of a log file
// and the byte offset where it ends. A final line that lacks its
// newline is treated as torn even if it happens to parse: an append
// must never concatenate onto it.
func scanValid(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("wal: seek: %w", err)
	}
	br := bufio.NewReaderSize(f, 64*1024)
	var (
		recs []Record
		off  int64
	)
	for {
		line, err := br.ReadBytes('\n')
		if err == nil {
			var r Record
			if json.Unmarshal(line, &r) != nil {
				break // torn or corrupt: stop at the last valid record
			}
			recs = append(recs, r)
			off += int64(len(line))
			continue
		}
		if err == io.EOF {
			break
		}
		return nil, 0, fmt.Errorf("wal: scan: %w", err)
	}
	return recs, off, nil
}

// Append implements Log.
func (l *FileLog) Append(r Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	r.LSN = l.next
	b, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("wal: marshal: %w", err)
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	l.m.Inc(metrics.WALAppends)
	l.m.Add(metrics.WALBytes, int64(len(b))+1)
	if l.sync {
		if err := l.w.Flush(); err != nil {
			return 0, fmt.Errorf("wal: flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.m.Inc(metrics.WALFsyncs)
	}
	return r.LSN, nil
}

// AppendNoSync implements BatchBackend: the record reaches the
// buffered writer but is not forced to stable storage — a group-commit
// leader makes the whole batch durable with one Sync.
func (l *FileLog) AppendNoSync(r Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	r.LSN = l.next
	b, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("wal: marshal: %w", err)
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return 0, fmt.Errorf("wal: write: %w", err)
	}
	l.m.Inc(metrics.WALAppends)
	l.m.Add(metrics.WALBytes, int64(len(b))+1)
	return r.LSN, nil
}

// Sync implements BatchBackend: flush the buffered tail and fsync.
// Under syncEvery=false it still flushes to the OS but skips the
// fsync, mirroring Append's durability setting.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if !l.sync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.m.Inc(metrics.WALFsyncs)
	return nil
}

// Records implements Log. It tolerates a torn final line (crash during
// append) by stopping at the first undecodable record.
func (l *FileLog) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return nil, fmt.Errorf("wal: flush: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	var out []Record
	sc := bufio.NewScanner(l.f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			break // torn tail record: ignore it and everything after
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return nil, fmt.Errorf("wal: seek end: %w", err)
	}
	return out, nil
}

// Close implements Log. Under syncEvery the buffered tail is fsynced,
// not merely flushed to the OS, before the descriptor closes — a clean
// shutdown must leave nothing in the page cache that a subsequent
// power loss could take away.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
		l.m.Inc(metrics.WALFsyncs)
	}
	return l.f.Close()
}

// ErrNoLog marks analysis of an empty log.
var ErrNoLog = errors.New("wal: no records")

// ProcImage is the reconstructed state of one process after a crash.
type ProcImage struct {
	Proc string
	// Committed activities (local ids) in commit order.
	Committed []int
	// Compensated activities.
	Compensated []int
	// Failed activities.
	Failed []int
	// Prepared holds in-doubt transactions keyed by local id.
	Prepared map[int]PreparedTx
	// Decided is set when a 2PC commit decision was logged but not all
	// RecResolved records followed: recovery must re-commit the
	// prepared transactions (presumed commit after decision).
	Decided bool
	// Resolved holds local ids whose prepared transaction was resolved.
	Resolved map[int]bool
	// Aborting is true when RecAbortBegin was logged without a
	// RecTerminate.
	Aborting bool
	// RedoCommit lists transactions the log shows as committed — a
	// RecResolved with Commit set, or a committed step outcome carrying
	// its transaction id. If such a transaction is still in doubt at
	// its subsystem after a crash (the crash hit the window between the
	// force-log and the subsystem-side apply), recovery must redo the
	// commit instead of presuming abort.
	RedoCommit []PreparedTx
	// Terminated and TerminatedCommitted mirror RecTerminate.
	Terminated          bool
	TerminatedCommitted bool
}

// PreparedTx identifies an in-doubt transaction at a subsystem.
type PreparedTx struct {
	Subsystem string
	Tx        int64
	Service   string
}

// Analyze scans the log and reconstructs per-process images. Processes
// that already terminated are included with Terminated set; the caller
// selects the active ones for the group abort.
func Analyze(recs []Record) (map[string]*ProcImage, error) {
	if len(recs) == 0 {
		return nil, ErrNoLog
	}
	images := make(map[string]*ProcImage)
	img := func(proc string) *ProcImage {
		im := images[proc]
		if im == nil {
			im = &ProcImage{
				Proc:     proc,
				Prepared: make(map[int]PreparedTx),
				Resolved: make(map[int]bool),
			}
			images[proc] = im
		}
		return im
	}
	for _, r := range recs {
		switch r.Type {
		case RecStart:
			img(r.Proc)
		case RecOutcome:
			im := img(r.Proc)
			switch r.Outcome {
			case "committed":
				im.Committed = append(im.Committed, r.Local)
				delete(im.Prepared, r.Local)
				if r.Tx != 0 && r.Subsystem != "" {
					im.RedoCommit = append(im.RedoCommit, PreparedTx{Subsystem: r.Subsystem, Tx: r.Tx, Service: r.Service})
				}
			case "prepared":
				im.Prepared[r.Local] = PreparedTx{Subsystem: r.Subsystem, Tx: r.Tx, Service: r.Service}
			}
		case RecCompensate:
			im := img(r.Proc)
			im.Compensated = append(im.Compensated, r.Local)
			if r.Tx != 0 && r.Subsystem != "" {
				im.RedoCommit = append(im.RedoCommit, PreparedTx{Subsystem: r.Subsystem, Tx: r.Tx, Service: r.Service})
			}
		case RecFailed:
			im := img(r.Proc)
			im.Failed = append(im.Failed, r.Local)
		case RecAbortBegin:
			img(r.Proc).Aborting = true
		case RecDecision:
			img(r.Proc).Decided = true
		case RecResolved:
			im := img(r.Proc)
			im.Resolved[r.Local] = true
			if r.Commit {
				im.Committed = append(im.Committed, r.Local)
				if r.Tx != 0 && r.Subsystem != "" {
					im.RedoCommit = append(im.RedoCommit, PreparedTx{Subsystem: r.Subsystem, Tx: r.Tx, Service: r.Service})
				}
			}
			delete(im.Prepared, r.Local)
		case RecTerminate:
			im := img(r.Proc)
			im.Terminated = true
			im.TerminatedCommitted = r.Committed
		}
	}
	return images, nil
}
