package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMemLogAppendAndRecords(t *testing.T) {
	t.Parallel()
	l := NewMemLog()
	lsn1, err := l.Append(Record{Type: RecStart, Proc: "P1"})
	if err != nil || lsn1 != 1 {
		t.Fatalf("lsn1 = %d, %v", lsn1, err)
	}
	lsn2, _ := l.Append(Record{Type: RecDispatch, Proc: "P1", Local: 1, Service: "x"})
	if lsn2 != 2 {
		t.Fatalf("lsn2 = %d", lsn2)
	}
	recs, err := l.Records()
	if err != nil || len(recs) != 2 {
		t.Fatalf("records = %v, %v", recs, err)
	}
	if recs[0].Type != RecStart || recs[1].Service != "x" {
		t.Fatalf("records content wrong: %+v", recs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: RecStart, Proc: "P1"})
	l.Append(Record{Type: RecOutcome, Proc: "P1", Local: 2, Outcome: "prepared", Tx: 7, Subsystem: "s"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: LSNs continue.
	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lsn, err := l2.Append(Record{Type: RecTerminate, Proc: "P1", Committed: true})
	if err != nil || lsn != 3 {
		t.Fatalf("lsn = %d, %v", lsn, err)
	}
	recs, err := l2.Records()
	if err != nil || len(recs) != 3 {
		t.Fatalf("records = %v, %v", recs, err)
	}
	if recs[1].Outcome != "prepared" || recs[1].Tx != 7 {
		t.Fatalf("record = %+v", recs[1])
	}
}

func TestFileLogTornTail(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Type: RecStart, Proc: "P1"})
	l.Close()
	// Simulate a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"lsn":2,"type":1,"proc":"P1","loc`)
	f.Close()
	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("torn tail must be ignored, got %d records", len(recs))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	t.Parallel()
	if _, err := Analyze(nil); err != ErrNoLog {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeImages(t *testing.T) {
	t.Parallel()
	recs := []Record{
		{Type: RecStart, Proc: "P1"},
		{Type: RecDispatch, Proc: "P1", Local: 1, Service: "a"},
		{Type: RecOutcome, Proc: "P1", Local: 1, Outcome: "committed"},
		{Type: RecOutcome, Proc: "P1", Local: 2, Outcome: "prepared", Tx: 9, Subsystem: "s", Service: "p"},
		{Type: RecStart, Proc: "P2"},
		{Type: RecOutcome, Proc: "P2", Local: 1, Outcome: "committed"},
		{Type: RecFailed, Proc: "P2", Local: 2},
		{Type: RecCompensate, Proc: "P2", Local: 1},
		{Type: RecAbortBegin, Proc: "P2"},
		{Type: RecTerminate, Proc: "P2", Committed: false},
	}
	images, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	p1 := images["P1"]
	if len(p1.Committed) != 1 || p1.Committed[0] != 1 {
		t.Fatalf("p1 committed = %v", p1.Committed)
	}
	if tx, ok := p1.Prepared[2]; !ok || tx.Tx != 9 || tx.Subsystem != "s" {
		t.Fatalf("p1 prepared = %v", p1.Prepared)
	}
	if p1.Terminated {
		t.Fatal("p1 must be active")
	}
	p2 := images["P2"]
	if !p2.Terminated || p2.TerminatedCommitted {
		t.Fatal("p2 must have terminated by abort")
	}
	if !p2.Aborting || len(p2.Compensated) != 1 || len(p2.Failed) != 1 {
		t.Fatalf("p2 image = %+v", p2)
	}
}

func TestAnalyzeDecisionAndResolution(t *testing.T) {
	t.Parallel()
	recs := []Record{
		{Type: RecStart, Proc: "P1"},
		{Type: RecOutcome, Proc: "P1", Local: 2, Outcome: "prepared", Tx: 5, Subsystem: "s", Service: "p"},
		{Type: RecOutcome, Proc: "P1", Local: 3, Outcome: "prepared", Tx: 6, Subsystem: "s", Service: "r"},
		{Type: RecDecision, Proc: "P1"},
		{Type: RecResolved, Proc: "P1", Local: 2, Tx: 5, Commit: true},
	}
	images, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	p1 := images["P1"]
	if !p1.Decided {
		t.Fatal("decision must be recorded")
	}
	if p1.Resolved[3] || !p1.Resolved[2] {
		t.Fatalf("resolved = %v", p1.Resolved)
	}
	if _, stillPrepared := p1.Prepared[3]; !stillPrepared {
		t.Fatal("tx 6 must remain in doubt")
	}
	if _, gone := p1.Prepared[2]; gone {
		t.Fatal("tx 5 must be resolved")
	}
}

func TestRecTypeString(t *testing.T) {
	t.Parallel()
	for rt := RecStart; rt <= RecTerminate; rt++ {
		if rt.String() == "" {
			t.Fatalf("empty label for %d", int(rt))
		}
	}
	if RecType(99).String() != "RecType(99)" {
		t.Fatal("unknown label")
	}
}
