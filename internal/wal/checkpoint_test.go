package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// termProc appends the records of a process that commits svc once and
// terminates regularly.
func termProc(t *testing.T, l Log, proc, svc string) {
	t.Helper()
	for _, r := range []Record{
		{Type: RecStart, Proc: proc},
		{Type: RecDispatch, Proc: proc, Local: 0, Service: svc},
		{Type: RecOutcome, Proc: proc, Local: 0, Service: svc, Outcome: "committed"},
		{Type: RecTerminate, Proc: proc, Committed: true},
	} {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

// liveProc appends the records of a process that committed svc but has
// not terminated.
func liveProc(t *testing.T, l Log, proc, svc string) {
	t.Helper()
	for _, r := range []Record{
		{Type: RecStart, Proc: proc},
		{Type: RecDispatch, Proc: proc, Local: 0, Service: svc},
		{Type: RecOutcome, Proc: proc, Local: 0, Service: svc, Outcome: "committed"},
	} {
		if _, err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestCheckpointBuildAndExpand(t *testing.T) {
	l := NewMemLog()
	termProc(t, l, "T1", "a")
	liveProc(t, l, "L1", "b")

	cp, err := TakeCheckpoint(l, nil, nil, nil)
	if err != nil {
		t.Fatalf("TakeCheckpoint: %v", err)
	}
	if cp.Horizon != 7 {
		t.Fatalf("horizon = %d, want 7", cp.Horizon)
	}
	if len(cp.Live) != 3 || cp.Procs != 1 {
		t.Fatalf("live = %d records / %d procs, want 3 / 1", len(cp.Live), cp.Procs)
	}
	if cp.AppliedSvc["a"] != 1 || len(cp.AppliedSvc) != 1 {
		t.Fatalf("applied = %v, want map[a:1]", cp.AppliedSvc)
	}
	if cp.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", cp.Dropped)
	}

	// A post-checkpoint tail record must appear in the expanded view;
	// T1's records must not.
	if _, err := l.Append(Record{Type: RecTerminate, Proc: "L1", Committed: true}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	exp := Expand(recs)
	if exp.Checkpoint == nil || exp.Fallback {
		t.Fatalf("expansion did not adopt the checkpoint: %+v", exp)
	}
	if len(exp.Records) != 4 {
		t.Fatalf("expanded = %d records, want 4 (3 live + 1 tail)", len(exp.Records))
	}
	for _, r := range exp.Records {
		if r.Proc == "T1" {
			t.Fatalf("summarized process leaked into the expansion: %+v", r)
		}
	}
	img, err := Analyze(exp.Records)
	if err != nil {
		t.Fatalf("analyzing expansion: %v", err)
	}
	if img["L1"] == nil || !img["L1"].Terminated {
		t.Fatalf("L1 image wrong after expansion: %+v", img["L1"])
	}
}

// TestCheckpointFolding takes a second checkpoint over a log that
// already has one and checks the summary accumulates instead of losing
// the first checkpoint's counts.
func TestCheckpointFolding(t *testing.T) {
	l := NewMemLog()
	termProc(t, l, "T1", "a")
	if _, err := TakeCheckpoint(l, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	termProc(t, l, "T2", "a")
	termProc(t, l, "T3", "b")
	cp2, err := TakeCheckpoint(l, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.AppliedSvc["a"] != 2 || cp2.AppliedSvc["b"] != 1 {
		t.Fatalf("folded applied = %v, want map[a:2 b:1]", cp2.AppliedSvc)
	}
	if cp2.Dropped != 12 {
		t.Fatalf("cumulative dropped = %d, want 12", cp2.Dropped)
	}
	recs, _ := l.Records()
	exp := Expand(recs)
	if len(exp.Records) != 0 {
		t.Fatalf("everything terminated, expanded = %d records, want 0", len(exp.Records))
	}
}

// TestCheckpointEdgesAndShadow checks the serialization summary: a
// terminated process conflicting with two live ones must leave both the
// transitive live×live edge and its committed service in their shadows.
func TestCheckpointEdgesAndShadow(t *testing.T) {
	l := NewMemLog()
	liveProc(t, l, "P", "x")
	termProc(t, l, "M", "x") // conflicts with both P (before) and Q (after)
	liveProc(t, l, "Q", "x")

	conflicts := func(a, b string) bool { return a == "x" && b == "x" }
	cp, err := TakeCheckpoint(l, conflicts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEdge := [2]string{"P", "Q"}
	found := false
	for _, e := range cp.Edges {
		if e == wantEdge {
			found = true
		}
	}
	if !found {
		t.Fatalf("edges = %v, want transitive P→Q through summarized M", cp.Edges)
	}
	if !reflect.DeepEqual(cp.Shadow["P"], []string{"x"}) {
		t.Fatalf("shadow[P] = %v, want [x]", cp.Shadow["P"])
	}
}

// TestFileCompactPersists compacts a file log and checks the rewritten
// file holds exactly checkpoint + tail, survives reopening, and that
// appends after compaction continue the LSN sequence.
func TestFileCompactPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	termProc(t, l, "T1", "a")
	liveProc(t, l, "L1", "b")
	if _, err := TakeCheckpoint(l, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecTerminate, Proc: "L1", Committed: true}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(nil); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Post-compaction append must keep monotone LSNs.
	lsn, err := l.Append(Record{Type: RecStart, Proc: "N1"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 {
		t.Fatalf("post-compaction LSN = %d, want 10 (counter preserved)", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, false)
	if err != nil {
		t.Fatalf("reopening compacted log: %v", err)
	}
	defer re.Close()
	recs, err := re.Records()
	if err != nil {
		t.Fatal(err)
	}
	// [checkpoint, L1 terminate, N1 start] — T1's history truncated.
	if len(recs) != 3 || recs[0].Type != RecCheckpoint {
		t.Fatalf("compacted file holds %d records (first %v), want 3 starting with the checkpoint", len(recs), recs[0].Type)
	}
	exp := Expand(recs)
	if len(exp.Records) != 5 {
		t.Fatalf("expanded = %d records, want 5 (3 live + tail of 2)", len(exp.Records))
	}
	img, err := Analyze(exp.Records)
	if err != nil {
		t.Fatal(err)
	}
	if img["L1"] == nil || !img["L1"].Terminated || img["N1"] == nil {
		t.Fatalf("images wrong after compaction + reopen: %+v", img)
	}
	if tmp := path + ".compact"; fileExists(tmp) {
		t.Fatalf("temp file %s left behind", tmp)
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}

// TestExpandCorruptCheckpointFallsBack checks that an invalid
// checkpoint payload never poisons the replay: Expand flags the
// fallback and returns the full history.
func TestExpandCorruptCheckpointFallsBack(t *testing.T) {
	l := NewMemLog()
	termProc(t, l, "T1", "a")
	liveProc(t, l, "L1", "b")
	// Structurally invalid: a live record past the horizon.
	bad := &Checkpoint{Horizon: 2, Live: []Record{{LSN: 99, Type: RecStart, Proc: "X"}}}
	if bad.valid() {
		t.Fatal("fixture checkpoint unexpectedly valid")
	}
	if _, err := l.Append(Record{Type: RecCheckpoint, Checkpoint: bad}); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.Records()
	exp := Expand(recs)
	if !exp.Fallback || exp.Checkpoint != nil {
		t.Fatalf("corrupt checkpoint not rejected: %+v", exp)
	}
	if len(exp.Records) != 7 {
		t.Fatalf("fallback expanded = %d records, want all 7 non-checkpoint records", len(exp.Records))
	}

	// An earlier valid checkpoint behind the corrupt one is still used.
	l2 := NewMemLog()
	termProc(t, l2, "T1", "a")
	if _, err := TakeCheckpoint(l2, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	liveProc(t, l2, "L1", "b")
	if _, err := l2.Append(Record{Type: RecCheckpoint, Checkpoint: bad}); err != nil {
		t.Fatal(err)
	}
	recs2, _ := l2.Records()
	exp2 := Expand(recs2)
	if !exp2.Fallback || exp2.Checkpoint == nil {
		t.Fatalf("fallback to earlier checkpoint failed: %+v", exp2)
	}
	if len(exp2.Records) != 3 {
		t.Fatalf("expanded = %d records, want L1's 3 tail records", len(exp2.Records))
	}
}

// TestMemCompact mirrors the file test on the in-memory log.
func TestMemCompact(t *testing.T) {
	l := NewMemLog()
	termProc(t, l, "T1", "a")
	liveProc(t, l, "L1", "b")
	if _, err := TakeCheckpoint(l, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(nil); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.Records()
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("compacted memlog holds %d records, want just the checkpoint", len(recs))
	}
	// Compacting a log with no checkpoint is a no-op.
	l2 := NewMemLog()
	termProc(t, l2, "T1", "a")
	if err := l2.Compact(nil); err != nil {
		t.Fatal(err)
	}
	recs2, _ := l2.Records()
	if len(recs2) != 4 {
		t.Fatalf("no-checkpoint compaction changed the log: %d records", len(recs2))
	}
}

// TestCheckpointRecordRoundTrips checks the JSON payload survives the
// file log encode/decode path bit-for-bit.
func TestCheckpointRecordRoundTrips(t *testing.T) {
	cp := &Checkpoint{
		Horizon:    7,
		Live:       []Record{{LSN: 5, Type: RecStart, Proc: "L1"}},
		AppliedSvc: map[string]int64{"a": 2},
		Edges:      [][2]string{{"P", "Q"}},
		Shadow:     map[string][]string{"P": {"x"}},
		Procs:      1,
		Dropped:    4,
	}
	b, err := json.Marshal(Record{LSN: 8, Type: RecCheckpoint, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Checkpoint, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back.Checkpoint, cp)
	}
}
