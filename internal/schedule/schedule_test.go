package schedule_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

// fig4a builds the serializable process schedule S_t2 of Example 4 /
// Figure 4(a): ⟨a11 a21 a22 a23 a12 a13 a24⟩ with conflicts
// (a11,a21), (a12,a24), (a15,a25).
func fig4a(t testing.TB) *schedule.Schedule {
	t.Helper()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	return s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1),
		schedule.Ok("P2", 2),
		schedule.Ok("P2", 3),
		schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
		schedule.Ok("P2", 4),
	)
}

// fig4b builds the non-serializable process schedule S'_t2 of Example 3 /
// Figure 4(b): a24 executes before a12, closing the cycle P1 → P2 → P1.
func fig4b(t testing.TB) *schedule.Schedule {
	t.Helper()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	return s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1),
		schedule.Ok("P2", 2),
		schedule.Ok("P2", 3),
		schedule.Ok("P2", 4),
		schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
	)
}

// fig7 builds the prefix-reducible execution S” of Example 7/9 /
// Figure 7: P2's non-compensatable activities are deferred until C_1.
func fig7(t testing.TB) *schedule.Schedule {
	t.Helper()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	return s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1),
		schedule.Ok("P2", 2),
		schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
		schedule.Ok("P1", 4),
		schedule.C("P1"),
		schedule.Ok("P2", 3),
		schedule.Ok("P2", 4),
		schedule.Ok("P2", 5),
		schedule.C("P2"),
	)
}

// fig9 builds the quasi-commit interleaving of Example 10 / Figure 9:
// a31 (conflicting with a11) executes after P1's pivot a12, so the
// compensation of a11 can no longer introduce a cycle.
func fig9(t testing.TB) *schedule.Schedule {
	t.Helper()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P3())
	return s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P1", 2),
		schedule.Ok("P3", 1),
		schedule.Ok("P3", 2),
		schedule.Ok("P1", 3),
		schedule.Ok("P1", 4),
		schedule.C("P1"),
		schedule.Ok("P3", 3),
		schedule.C("P3"),
	)
}

func TestExample3NotSerializable(t *testing.T) {
	t.Parallel()
	s := fig4b(t)
	if s.Serializable() {
		t.Fatal("S'_t2 of Example 3 must not be serializable (cycle P1→P2→P1)")
	}
	g := s.SerializationGraph()
	if !g.HasEdge("P1", "P2") || !g.HasEdge("P2", "P1") {
		t.Fatalf("expected both edges, got %v", g.Edges())
	}
}

func TestExample4Serializable(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	if !s.Serializable() {
		t.Fatal("S_t2 of Example 4 must be serializable")
	}
	g := s.SerializationGraph()
	if !g.HasEdge("P1", "P2") || g.HasEdge("P2", "P1") {
		t.Fatalf("expected only P1→P2, got %v", g.Edges())
	}
}

func TestExample5CompletedSchedule(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	got := comp.String()
	// Completion adds a13⁻¹, a15, a16 (C(P1)) and a25 (C(P2)), with
	// the compensation first and P1's forward path before P2's (the
	// serialization order), then C_1 and C_2.
	wantOrder := []string{
		"a_{1_3}⁻¹", "a_{1_5}^r", "a_{1_6}^r", "a_{2_5}^r", "C_1", "C_2",
	}
	idx := -1
	for _, w := range wantOrder {
		at := strings.Index(got, w)
		if at < 0 {
			t.Fatalf("completed schedule %s missing %s", got, w)
		}
		if at < idx {
			t.Fatalf("completed schedule %s has %s out of order", got, w)
		}
		idx = at
	}
	if !strings.Contains(got, "A(P1,P2)") {
		t.Fatalf("completed schedule %s missing group abort", got)
	}
	if !comp.Serializable() {
		t.Fatal("S̃_t2 must be serializable (Example 5)")
	}
}

func TestExample6Reduction(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	red := comp.Reduce()
	if red.RemovedPairs != 1 {
		t.Fatalf("Example 6: exactly the pair (a13, a13⁻¹) is removable; removed %d", red.RemovedPairs)
	}
	if !red.Serial {
		t.Fatalf("reduced S̃_t2 must be serializable: %s", red.Describe())
	}
	ok, _, err := s.RED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("S_t2 is RED (Example 6)")
	}
}

func TestExample8NotPRED(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	ok, at, red, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("S_t2 must not be prefix-reducible (Example 8)")
	}
	// The failing prefix is S_t1 = ⟨a11 a21 a22 a23⟩: P2 reached F-REC
	// while P1 is in B-REC; compensating a11 closes a cycle that cannot
	// be eliminated because a21 has no available compensation.
	if at != 4 {
		t.Fatalf("shortest non-reducible prefix has length %d, want 4 (S_t1)", at)
	}
	if red.Serial {
		t.Fatal("the failing prefix's reduction must retain a cycle")
	}
}

func TestExample8PrefixDetails(t *testing.T) {
	t.Parallel()
	s := fig4a(t).Prefix(4)
	insts, err := schedule.Replay(map[process.ID]*process.Process{
		"P1": s.Process("P1"), "P2": s.Process("P2"),
	}, s.Events())
	if err != nil {
		t.Fatal(err)
	}
	if insts["P1"].Mode() != process.BREC {
		t.Fatal("P1 must be B-REC at t1")
	}
	if insts["P2"].Mode() != process.FREC {
		t.Fatal("P2 must be F-REC at t1")
	}
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	got := comp.String()
	for _, w := range []string{"a_{1_1}⁻¹", "a_{2_4}^r", "a_{2_5}^r"} {
		if !strings.Contains(got, w) {
			t.Fatalf("S̃_t1 %s missing %s (Figure 8)", got, w)
		}
	}
	if comp.Serializable() {
		t.Fatal("S̃_t1 contains the cycle a11 ≪ a21 ≪ a11⁻¹ (Example 8)")
	}
}

func TestExample7And9Fig7PRED(t *testing.T) {
	t.Parallel()
	s := fig7(t)
	ok, _, err := s.RED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("S'' of Example 7 must be RED")
	}
	okP, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !okP {
		t.Fatalf("S'' of Example 9 must be PRED; failed at prefix %d", at)
	}
}

func TestExample10QuasiCommit(t *testing.T) {
	t.Parallel()
	s := fig9(t)
	ok, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Figure 9 execution must be PRED (quasi-commit of a12); failed at prefix %d", at)
	}
}

func TestQuasiCommitContrast(t *testing.T) {
	t.Parallel()
	// If a31 runs while P1 is still B-REC and P3 then advances past its
	// own pivot before P1 terminates, the schedule is not PRED
	// (Lemma 1.1 violated).
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P3())
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P3", 1),
		schedule.Ok("P3", 2), // P3's pivot commits while P1 is B-REC
	)
	ok, _, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pivot of P3 committing while P1 (conflicting predecessor) is B-REC must violate PRED")
	}
}

func TestBothBRECFullCompensationIsRED(t *testing.T) {
	t.Parallel()
	// The classical situation of Section 3.5's discussion: while both
	// processes are still fully compensatable, the completed schedule
	// reduces to empty.
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P3())
	s.MustPlay(schedule.Ok("P1", 1), schedule.Ok("P3", 1))
	ok, red, err := s.RED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("both-B-REC prefix must be RED: %s", red.Describe())
	}
	if red.RemovedPairs != 2 {
		t.Fatalf("both compensation pairs must be removed, got %d", red.RemovedPairs)
	}
}

func TestClassicalAllCompensatableIsPRED(t *testing.T) {
	t.Parallel()
	// Section 3.5: "If all inverses were available and the classical
	// undo procedure could be applied, the prefix S_t1 would be
	// reducible." Rebuild P1/P2 with every activity compensatable and
	// replay the Figure 4(a) order: now PRED holds.
	q1 := process.NewBuilder("P1").
		Add(1, paper.SvcA11, activity.Compensatable).
		Add(2, paper.SvcA12, activity.Compensatable).
		Add(3, paper.SvcA13, activity.Compensatable).
		Seq(1, 2).Seq(2, 3).MustBuild()
	q2 := process.NewBuilder("P2").
		Add(1, paper.SvcA21, activity.Compensatable).
		Add(2, paper.SvcA22, activity.Compensatable).
		Add(3, paper.SvcA23, activity.Compensatable).
		Add(4, paper.SvcA24, activity.Compensatable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).MustBuild()
	s := schedule.MustNew(paper.Conflicts(), q1, q2)
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1),
		schedule.Ok("P2", 2),
		schedule.Ok("P2", 3),
		schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
		schedule.Ok("P2", 4),
	)
	ok, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("classical all-compensatable S_t2 must be PRED; failed at prefix %d", at)
	}
}

func TestSerialScheduleIsPRED(t *testing.T) {
	t.Parallel()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P1", 2), schedule.Ok("P1", 3),
		schedule.Ok("P1", 4), schedule.C("P1"),
		schedule.Ok("P2", 1), schedule.Ok("P2", 2), schedule.Ok("P2", 3),
		schedule.Ok("P2", 4), schedule.Ok("P2", 5), schedule.C("P2"),
	)
	ok, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("serial schedules are trivially PRED; failed at prefix %d", at)
	}
}

func TestScheduleWithFailureAndAlternativePRED(t *testing.T) {
	t.Parallel()
	// P1 alone: a13 fails, alternative a15 a16 runs, C_1. Every prefix
	// must be reducible.
	s := schedule.MustNew(paper.Conflicts(), paper.P1())
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P1", 2),
		schedule.Failv("P1", 3),
		schedule.Ok("P1", 5),
		schedule.Ok("P1", 6),
		schedule.C("P1"),
	)
	ok, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("single-process execution with alternative must be PRED; prefix %d", at)
	}
}

func TestScheduleWithCompensationEventsPRED(t *testing.T) {
	t.Parallel()
	// a14 fails; a13 is compensated inside the schedule itself; then
	// the alternative runs.
	s := schedule.MustNew(paper.Conflicts(), paper.P1())
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
		schedule.Failv("P1", 4),
		schedule.Comp("P1", 3),
		schedule.Ok("P1", 5),
		schedule.Ok("P1", 6),
		schedule.C("P1"),
	)
	ok, at, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("execution with in-schedule compensation must be PRED; prefix %d", at)
	}
}

func TestExplicitAbortSchedule(t *testing.T) {
	t.Parallel()
	// P2 aborts in B-REC: A_2, compensations in reverse order, C_2(ab).
	s := schedule.MustNew(paper.Conflicts(), paper.P2())
	s.MustPlay(
		schedule.Ok("P2", 1),
		schedule.Ok("P2", 2),
		schedule.Ab("P2"),
		schedule.Comp("P2", 2),
		schedule.Comp("P2", 1),
		schedule.A("P2"),
	)
	ok, _, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("backward-recovered abort must be PRED")
	}
	if got := s.Active(); len(got) != 0 {
		t.Fatalf("no active processes after the abort terminated, got %v", got)
	}
}

func TestIllegalSchedulesRejected(t *testing.T) {
	t.Parallel()
	mk := func() *schedule.Schedule {
		return schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	}
	if err := mk().Invoke("P1", 3); err == nil {
		t.Fatal("a13 before a11/a12 violates ≪_1")
	}
	if err := mk().Invoke("P1", 5); err == nil {
		t.Fatal("a15 without a13 failing violates ◁_1")
	}
	if err := mk().Invoke("P9", 1); err == nil {
		t.Fatal("unknown process must be rejected")
	}
	if err := mk().Invoke("P1", 99); err == nil {
		t.Fatal("unknown activity must be rejected")
	}
	if err := mk().Commit("P1"); err == nil {
		t.Fatal("C_1 before P1 is done must be rejected")
	}
	if err := mk().Compensate("P1", 1); err == nil {
		t.Fatal("compensating a pending activity must be rejected")
	}
	if err := mk().FinishAbort("P1"); err == nil {
		t.Fatal("abort termination without an abort must be rejected")
	}
	s := mk()
	if err := s.Invoke("P1", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Compensate("P1", 2); err == nil {
		t.Fatal("compensating a pivot must be rejected")
	}
}

func TestDuplicateProcessRejected(t *testing.T) {
	t.Parallel()
	if _, err := schedule.New(paper.Conflicts(), paper.P1(), paper.P1()); err == nil {
		t.Fatal("duplicate process ids must be rejected")
	}
}

func TestPrefixAndEvents(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	if s.Len() != 7 {
		t.Fatalf("Len = %d", s.Len())
	}
	p := s.Prefix(3)
	if p.Len() != 3 {
		t.Fatalf("prefix Len = %d", p.Len())
	}
	if q := s.Prefix(100); q.Len() != 7 {
		t.Fatal("over-long prefix must clamp")
	}
	evs := s.Events()
	evs[0].Local = 99
	if s.Events()[0].Local == 99 {
		t.Fatal("Events must return a copy")
	}
}

func TestConflictPairs(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	pairs := s.ConflictPairs()
	// (a11, a21) and (a12, a24).
	if len(pairs) != 2 {
		t.Fatalf("ConflictPairs = %v, want 2 pairs", pairs)
	}
}

func TestCompletedOfCompleteScheduleIsIdentity(t *testing.T) {
	t.Parallel()
	s := fig7(t)
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() != s.Len() {
		t.Fatalf("complete schedule should gain no events: %d vs %d", comp.Len(), s.Len())
	}
}

func TestGraphBasics(t *testing.T) {
	t.Parallel()
	s := fig4b(t)
	g := s.SerializationGraph()
	if _, ok := g.TopoOrder(); ok {
		t.Fatal("cyclic graph must have no topological order")
	}
	if !g.WouldCreateCycle("P1", "P2") {
		t.Fatal("adding P1→P2 when P2→P1 exists closes a cycle")
	}
	nodes := g.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestEventLabels(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	str := s.String()
	for _, w := range []string{"a_{1_1}^c", "a_{1_2}^p", "a_{2_4}^r"} {
		if !strings.Contains(str, w) {
			t.Errorf("schedule string %q missing %q", str, w)
		}
	}
}

func TestGraphDOT(t *testing.T) {
	t.Parallel()
	s := fig4a(t)
	dot := s.SerializationGraph().DOT("S")
	for _, frag := range []string{"digraph S", `"P1" -> "P2"`, `"P1";`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}
