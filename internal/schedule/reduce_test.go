package schedule_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/workload"
)

// TestEffectFreeRule exercises Definition 9.3: effect-free activities
// (pure readers) of non-committing processes are removed by the
// reduction and stop contributing conflicts.
func TestEffectFreeRule(t *testing.T) {
	t.Parallel()
	tab := conflict.NewTable()
	tab.AddConflict("read", "write")
	// P1 reads (effect-free), P2 writes; P1 never commits.
	p1 := process.NewBuilder("P1").
		Add(1, "read", activity.Retriable).
		MustBuild()
	p2 := process.NewBuilder("P2").
		Add(1, "write", activity.Pivot).
		MustBuild()
	s := schedule.MustNew(tab, p1, p2)
	s.EffectFree = func(svc string) bool { return svc == "read" }
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1),
		schedule.C("P2"),
	)
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	red := comp.Reduce()
	if red.RemovedEffectFree != 1 {
		t.Fatalf("effect-free removals = %d, want 1", red.RemovedEffectFree)
	}
	if !red.Serial {
		t.Fatal("after removing the reader the rest must be serializable")
	}
	// With the same schedule but no EffectFree declaration the reader
	// stays.
	s2 := schedule.MustNew(tab.Clone(), p1, p2)
	s2.MustPlay(schedule.Ok("P1", 1), schedule.Ok("P2", 1), schedule.C("P2"))
	comp2, err := s2.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if red2 := comp2.Reduce(); red2.RemovedEffectFree != 0 {
		t.Fatal("no effect-free removals expected without the declaration")
	}
}

// TestEffectFreeRuleKeepsCommittedProcesses verifies the rule applies
// only to processes that do not commit regularly.
func TestEffectFreeRuleKeepsCommittedProcesses(t *testing.T) {
	t.Parallel()
	tab := conflict.NewTable()
	p1 := process.NewBuilder("P1").
		Add(1, "read", activity.Retriable).
		MustBuild()
	s := schedule.MustNew(tab, p1)
	s.EffectFree = func(svc string) bool { return true }
	s.MustPlay(schedule.Ok("P1", 1), schedule.C("P1"))
	red := s.Reduce()
	if red.RemovedEffectFree != 0 {
		t.Fatal("activities of committed processes must be kept (Definition 9.3)")
	}
}

// Property: reduction never *creates* a conflict cycle — if the
// completed schedule is serializable as-is, the reduction's remainder
// is serializable too.
func TestPropertyReductionPreservesSerializability(t *testing.T) {
	t.Parallel()
	services := []string{"x", "y", "z", "w"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := conflict.NewTable()
		for i := 0; i < len(services); i++ {
			for j := i; j < len(services); j++ {
				if rng.Float64() < 0.35 {
					tab.AddConflict(services[i], services[j])
				}
			}
		}
		procs := []*process.Process{
			workload.RandomWellFormed(rng, "P1", services),
			workload.RandomWellFormed(rng, "P2", services),
		}
		s := workload.RandomSchedule(rng, tab, procs, 24)
		comp, err := s.Completed()
		if err != nil {
			return true // not all random states complete (fine)
		}
		if !comp.Serializable() {
			return true
		}
		red := comp.Reduce()
		if !red.Serial {
			t.Logf("seed %d: reduction broke serializability: %s", seed, comp)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reduction removes each compensation pair at most once
// and leaves no inverse event whose base is absent... more precisely:
// in the remainder, every inverse event still has its base event before
// it (pairs are removed together or kept together).
func TestPropertyReductionPairsConsistent(t *testing.T) {
	t.Parallel()
	services := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := conflict.NewTable()
		tab.AddConflict("a", "b")
		tab.AddConflict("a", "a")
		procs := []*process.Process{
			workload.RandomWellFormed(rng, "P1", services),
			workload.RandomWellFormed(rng, "P2", services),
		}
		s := workload.RandomSchedule(rng, tab, procs, 24)
		comp, err := s.Completed()
		if err != nil {
			return true
		}
		red := comp.Reduce()
		type key struct {
			proc  process.ID
			local int
		}
		basePresent := map[key]bool{}
		for _, e := range red.Remaining {
			if e.Type == schedule.Invoke && !e.Inverse {
				basePresent[key{e.Proc, e.Local}] = true
			}
		}
		for _, e := range red.Remaining {
			if e.Type == schedule.Invoke && e.Inverse {
				if !basePresent[key{e.Proc, e.Local}] {
					t.Logf("seed %d: orphan inverse %s in remainder", seed, e.Label())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RED is monotone under completion — a completed schedule's
// own completion is itself (completing is idempotent).
func TestPropertyCompletionIdempotent(t *testing.T) {
	t.Parallel()
	services := []string{"p", "q", "r"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := conflict.NewTable()
		tab.AddConflict("p", "q")
		procs := []*process.Process{
			workload.RandomWellFormed(rng, "P1", services),
			workload.RandomWellFormed(rng, "P2", services),
		}
		s := workload.RandomSchedule(rng, tab, procs, 20)
		comp, err := s.Completed()
		if err != nil {
			return true
		}
		comp2, err := comp.Completed()
		if err != nil {
			t.Logf("seed %d: completing a completed schedule failed: %v", seed, err)
			return false
		}
		if comp2.Len() != comp.Len() {
			t.Logf("seed %d: completion not idempotent: %d vs %d events\nS̃ =%s\nS̃̃=%s",
				seed, comp.Len(), comp2.Len(), comp, comp2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReduceOnPaperCompleteSchedule sanity-checks Reduce on a complete
// (all-committed) schedule: nothing to remove, serial order P1 → P2.
func TestReduceOnPaperCompleteSchedule(t *testing.T) {
	t.Parallel()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P1", 2), schedule.Ok("P1", 3),
		schedule.Ok("P1", 4), schedule.C("P1"),
		schedule.Ok("P2", 1), schedule.Ok("P2", 2), schedule.Ok("P2", 3),
		schedule.Ok("P2", 4), schedule.Ok("P2", 5), schedule.C("P2"),
	)
	red := s.Reduce()
	if red.RemovedPairs != 0 || red.RemovedEffectFree != 0 {
		t.Fatalf("nothing removable: %+v", red)
	}
	if !red.Serial || len(red.SerialOrder) != 2 || red.SerialOrder[0] != "P1" {
		t.Fatalf("serial order = %v", red.SerialOrder)
	}
}
