package schedule_test

import (
	"fmt"
	"math/rand"
	"testing"

	"transproc/internal/conflict"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/workload"
)

func TestProcRecSerialOK(t *testing.T) {
	t.Parallel()
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P1", 2), schedule.Ok("P1", 3),
		schedule.Ok("P1", 4), schedule.C("P1"),
		schedule.Ok("P2", 1), schedule.Ok("P2", 2), schedule.Ok("P2", 3),
		schedule.Ok("P2", 4), schedule.Ok("P2", 5), schedule.C("P2"),
	)
	ok, v := s.ProcessRecoverable()
	if !ok {
		t.Fatalf("serial schedule must be process-recoverable: %v", v)
	}
}

func TestProcRecFig7OK(t *testing.T) {
	t.Parallel()
	s := fig7(t)
	ok, v := s.ProcessRecoverable()
	if !ok {
		t.Fatalf("Figure 7 execution must be process-recoverable: %v", v)
	}
}

func TestProcRecRule1Violation(t *testing.T) {
	t.Parallel()
	// P2 terminates before P1 although a11 ≪ a21: C_2 ≪ C_1 violates
	// Definition 11.1.
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1), schedule.Ok("P2", 2), schedule.Ok("P2", 3),
		schedule.Ok("P2", 4), schedule.Ok("P2", 5), schedule.C("P2"),
		schedule.Ok("P1", 2), schedule.Ok("P1", 3), schedule.Ok("P1", 4),
		schedule.C("P1"),
	)
	ok, vs := s.ProcessRecoverable()
	if ok {
		t.Fatal("C_2 before C_1 must violate process-recoverability")
	}
	found := false
	for _, v := range vs {
		if v.Rule == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a rule-1 violation, got %v", vs)
	}
}

func TestProcRecRule2Violation(t *testing.T) {
	t.Parallel()
	// S_t1 extended: P2's pivot a23 (non-compensatable following a21)
	// commits before P1's pivot a12 (following a11): Definition 11.2.
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1),
		schedule.Ok("P2", 1), schedule.Ok("P2", 2), schedule.Ok("P2", 3),
		schedule.Ok("P1", 2),
	)
	ok, vs := s.ProcessRecoverable()
	if ok {
		t.Fatal("a23 before a12 must violate rule 2")
	}
	found := false
	for _, v := range vs {
		if v.Rule == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a rule-2 violation, got %v", vs)
	}
}

func TestProcRecFig4aPrefixViolation(t *testing.T) {
	t.Parallel()
	// The Example 8 prefix is exactly a rule-2 situation once a12 runs.
	s := fig4a(t)
	ok, _ := s.ProcessRecoverable()
	if ok {
		t.Fatal("S_t2 of Figure 4(a) violates process-recoverability (its prefix S_t1 is not reducible)")
	}
}

// ---- Theorem 1: PRED ⇒ serializable ∧ process-recoverable -------------

func TestTheorem1Property(t *testing.T) {
	t.Parallel()
	services := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	nPRED := 0
	for trial := 0; trial < 400; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tab := conflict.NewTable()
		// Random conflict relation over the service universe.
		for i := 0; i < len(services); i++ {
			for j := i; j < len(services); j++ {
				if rng.Float64() < 0.3 {
					tab.AddConflict(services[i], services[j])
				}
			}
		}
		nProcs := 2 + rng.Intn(2)
		procs := make([]*process.Process, nProcs)
		for i := range procs {
			procs[i] = workload.RandomWellFormed(rng, process.ID(fmt.Sprintf("P%d", i+1)), services)
			if err := process.ValidateGuaranteedTermination(procs[i]); err != nil {
				t.Fatalf("trial %d: generator produced invalid process: %v", trial, err)
			}
		}
		s := workload.RandomSchedule(rng, tab, procs, 40)
		pred, _, _, err := s.PRED()
		if err != nil {
			t.Fatalf("trial %d: %v (schedule %s)", trial, err, s)
		}
		if !pred {
			continue
		}
		nPRED++
		if !s.EffectiveSerializable() {
			t.Fatalf("trial %d: PRED schedule not serializable: %s", trial, s)
		}
		// Theorem 1 (strict form): a PRED schedule is serializable, and
		// any Definition-11 violation it contains must be one whose
		// potential conflict cycle never materializes (the completion of
		// the earlier process does not conflict with the later process).
		if ok, vs := s.ProcessRecoverable(); !ok {
			for _, v := range vs {
				if s.ViolationMaterialized(v) {
					t.Fatalf("trial %d: PRED schedule with a materialized Proc-REC violation: %s\nviolation: %+v", trial, s, v)
				}
			}
		}
	}
	if nPRED < 20 {
		t.Fatalf("property test exercised only %d PRED schedules; generator too adversarial", nPRED)
	}
	t.Logf("Theorem 1 verified on %d PRED schedules", nPRED)
}

// Lemma 2: in any PRED schedule whose completed schedule executes two
// conflicting compensations, they appear in reverse order of their base
// activities.
func TestLemma2Property(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		tab := conflict.NewTable()
		services := []string{"x", "y", "z"}
		tab.AddConflict("x", "x")
		tab.AddConflict("x", "y")
		procs := []*process.Process{
			workload.RandomWellFormed(rng, "P1", services),
			workload.RandomWellFormed(rng, "P2", services),
		}
		s := workload.RandomSchedule(rng, tab, procs, 30)
		pred, _, _, err := s.PRED()
		if err != nil || !pred {
			continue
		}
		comp, err := s.Completed()
		if err != nil {
			t.Fatal(err)
		}
		evs := comp.Events()
		basePos := make(map[string]int)
		for i, e := range evs {
			if e.Type == schedule.Invoke && !e.Inverse {
				basePos[fmt.Sprintf("%s/%d", e.Proc, e.Local)] = i
			}
		}
		var inverses []schedule.Event
		var invPos []int
		for i, e := range evs {
			if e.Type == schedule.Invoke && e.Inverse {
				inverses = append(inverses, e)
				invPos = append(invPos, i)
			}
		}
		for i := 0; i < len(inverses); i++ {
			for j := i + 1; j < len(inverses); j++ {
				a, b := inverses[i], inverses[j]
				if a.Proc == b.Proc {
					continue
				}
				if !tab.Conflicts(a.Service, b.Service) {
					continue
				}
				pa := basePos[fmt.Sprintf("%s/%d", a.Proc, a.Local)]
				pb := basePos[fmt.Sprintf("%s/%d", b.Proc, b.Local)]
				// Lemma 2 constrains pairs that are open concurrently;
				// a pair fully closed before the other's base executed
				// reduces independently and may appear in any order.
				if pa >= invPos[j] || pb >= invPos[i] {
					continue
				}
				// a⁻¹ before b⁻¹ requires base(a) after base(b).
				if invPos[i] < invPos[j] && pa < pb {
					t.Fatalf("trial %d: Lemma 2 violated in %s", trial, comp)
				}
			}
		}
	}
}
