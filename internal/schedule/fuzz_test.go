package schedule_test

import (
	"testing"

	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

// FuzzScheduleReduce drives random operation sequences over the paper's
// two example processes and checks the reducibility machinery:
//
//   - PRED on the full schedule implies RED (the full schedule is its
//     own last prefix),
//   - a reported shortest non-reducible prefix is in range and minimal
//     (the prefix one event shorter is prefix-reducible),
//   - the check is deterministic.
//
// Invalid operations are rejected by the schedule's transition checks
// and simply skipped, so arbitrary bytes explore the space of legal
// schedules.
func FuzzScheduleReduce(f *testing.F) {
	// Figure 4(a): serializable interleaving of P1 and P2.
	f.Add([]byte{0, 1, 3, 5, 2, 4, 7, 64, 65})
	// Figure 4(b): conflict cycle P1 -> P2 -> P1.
	f.Add([]byte{0, 1, 3, 5, 7, 2, 4})
	// Failure, abort and compensation ops.
	f.Add([]byte{0, 2, 34, 80, 48, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			t.Skip("long inputs only slow the quadratic PRED check down")
		}
		s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
		procs := []process.ID{"P1", "P2"}
		for _, b := range data {
			p := procs[int(b)&1]
			local := int(b>>1)%5 + 1
			switch (b >> 4) % 6 {
			case 0, 1:
				_ = s.Invoke(p, local)
			case 2:
				_ = s.Fail(p, local)
			case 3:
				_ = s.Compensate(p, local)
			case 4:
				_ = s.Commit(p)
			case 5:
				_ = s.BeginAbort(p)
			}
		}
		ok, at, _, err := s.PRED()
		if err != nil {
			t.Skip("schedule state not completable")
		}
		ok2, at2, _, err2 := s.PRED()
		if err2 != nil || ok2 != ok || at2 != at {
			t.Fatalf("PRED not deterministic: (%v,%d,%v) vs (%v,%d,%v)", ok, at, err, ok2, at2, err2)
		}
		if ok {
			full, _, err := s.RED()
			if err != nil {
				t.Fatalf("PRED ok but RED errors: %v\n%s", err, s)
			}
			if !full {
				t.Fatalf("PRED ok but full schedule not reducible:\n%s", s)
			}
			return
		}
		if at < 1 || at > s.Len() {
			t.Fatalf("non-reducible prefix length %d out of range [1,%d]", at, s.Len())
		}
		if shorterOK, _, _, err := s.Prefix(at - 1).PRED(); err == nil && !shorterOK {
			t.Fatalf("prefix %d reported shortest, but prefix %d is already non-reducible", at, at-1)
		}
	})
}
