package schedule

import (
	"fmt"
	"sort"
	"strings"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
)

// Schedule is a process schedule S = (P_S, A_S, ≪_S) (Definition 7). The
// event slice is the observed total order; ≪_S is the induced partial
// order (intra-process precedence plus the observed order of conflicting
// activities). Schedules are built incrementally via the appending
// methods, which replay each event against per-process instances and
// reject executions that are not legal for their process (Definition
// 7.1 admits only legal executions of each P_i).
type Schedule struct {
	Table *conflict.Table
	// EffectFree optionally reports services whose activities are
	// effect-free by themselves (e.g. pure readers); used by the
	// effect-free reduction rule (Definition 9.3).
	EffectFree func(service string) bool

	procs  map[process.ID]*process.Process
	order  []process.ID
	events []Event
}

// New returns an empty schedule over the given processes. The conflict
// table is taught the compensating-service base mapping of every
// compensatable activity (perfect commutativity, Section 3.2).
func New(table *conflict.Table, procs ...*process.Process) (*Schedule, error) {
	s := &Schedule{
		Table: table,
		procs: make(map[process.ID]*process.Process, len(procs)),
	}
	for _, p := range procs {
		if _, dup := s.procs[p.ID]; dup {
			return nil, fmt.Errorf("schedule: duplicate process %s", p.ID)
		}
		s.procs[p.ID] = p
		s.order = append(s.order, p.ID)
		for _, a := range p.Activities() {
			if a.Kind == activity.Compensatable {
				table.MapBase(a.Compensation, a.Service)
			}
		}
	}
	return s, nil
}

// MustNew is New that panics on error, for fixtures.
func MustNew(table *conflict.Table, procs ...*process.Process) *Schedule {
	s, err := New(table, procs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Processes returns the schedule's processes in registration order.
func (s *Schedule) Processes() []*process.Process {
	out := make([]*process.Process, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.procs[id])
	}
	return out
}

// Process returns the process with the given id, or nil.
func (s *Schedule) Process(id process.ID) *process.Process { return s.procs[id] }

// Events returns a copy of the event sequence.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.events) }

// append validates the event by replaying the whole schedule; this keeps
// the appending API simple and is fast enough for theory-sized schedules.
func (s *Schedule) append(e Event) error {
	trial := append(append([]Event(nil), s.events...), e)
	if _, err := Replay(s.procs, trial); err != nil {
		return err
	}
	s.events = trial
	return nil
}

// AppendUnchecked records an event without replay validation. It exists
// for trusted writers (the process scheduler, which maintains its own
// instances); correctness can still be validated afterwards with Replay
// or the PRED check, both of which replay from scratch.
func (s *Schedule) AppendUnchecked(e Event) {
	s.events = append(s.events, e)
}

// AddProcess registers an additional process after construction (used
// for process restarts after cascading aborts).
func (s *Schedule) AddProcess(p *process.Process) error {
	if _, dup := s.procs[p.ID]; dup {
		return fmt.Errorf("schedule: duplicate process %s", p.ID)
	}
	s.procs[p.ID] = p
	s.order = append(s.order, p.ID)
	for _, a := range p.Activities() {
		if a.Kind == activity.Compensatable {
			s.Table.MapBase(a.Compensation, a.Service)
		}
	}
	return nil
}

// Invoke appends the committed invocation of activity local of proc.
func (s *Schedule) Invoke(proc process.ID, local int) error {
	p := s.procs[proc]
	if p == nil {
		return fmt.Errorf("schedule: unknown process %s", proc)
	}
	a := p.Activity(local)
	if a == nil {
		return fmt.Errorf("schedule: unknown activity %s_%d", proc, local)
	}
	return s.append(Event{Type: Invoke, Proc: proc, Local: local, Service: a.Service, Kind: a.Kind})
}

// Fail appends the permanent failure of activity local of proc.
func (s *Schedule) Fail(proc process.ID, local int) error {
	p := s.procs[proc]
	if p == nil {
		return fmt.Errorf("schedule: unknown process %s", proc)
	}
	a := p.Activity(local)
	if a == nil {
		return fmt.Errorf("schedule: unknown activity %s_%d", proc, local)
	}
	return s.append(Event{Type: FailedInvoke, Proc: proc, Local: local, Service: a.Service, Kind: a.Kind})
}

// Compensate appends the committed compensating activity of local.
func (s *Schedule) Compensate(proc process.ID, local int) error {
	p := s.procs[proc]
	if p == nil {
		return fmt.Errorf("schedule: unknown process %s", proc)
	}
	a := p.Activity(local)
	if a == nil {
		return fmt.Errorf("schedule: unknown activity %s_%d", proc, local)
	}
	if a.Kind != activity.Compensatable {
		return fmt.Errorf("schedule: activity %s_%d is %v, not compensatable", proc, local, a.Kind)
	}
	return s.append(Event{Type: Invoke, Proc: proc, Local: local, Service: a.Compensation, Kind: activity.Compensation, Inverse: true})
}

// BeginAbort appends the abort activity A_i of proc: the process's
// completion steps follow it, concluded by FinishAbort.
func (s *Schedule) BeginAbort(proc process.ID) error {
	return s.append(Event{Type: AbortBegin, Proc: proc})
}

// Commit appends the regular termination C_i of proc.
func (s *Schedule) Commit(proc process.ID) error {
	return s.append(Event{Type: Terminate, Proc: proc, Committed: true})
}

// FinishAbort appends the terminal event of an abort whose completion
// steps have all been appended (the completed schedule turns A_i into
// C_i, Definition 8.2c).
func (s *Schedule) FinishAbort(proc process.ID) error {
	return s.append(Event{Type: Terminate, Proc: proc, Committed: false})
}

// MustPlay appends the events described by a compact script and panics on
// error; it exists for fixtures and tests. Each element is
// (proc, local, verb) with verb one of "ok", "fail", "comp"; local 0 with
// verb "C" commits, "A" finishes an abort.
func (s *Schedule) MustPlay(steps ...PlayStep) *Schedule {
	for _, st := range steps {
		var err error
		switch st.Verb {
		case "ok":
			err = s.Invoke(st.Proc, st.Local)
		case "fail":
			err = s.Fail(st.Proc, st.Local)
		case "comp":
			err = s.Compensate(st.Proc, st.Local)
		case "C":
			err = s.Commit(st.Proc)
		case "abort":
			err = s.BeginAbort(st.Proc)
		case "A":
			err = s.FinishAbort(st.Proc)
		default:
			err = fmt.Errorf("schedule: unknown verb %q", st.Verb)
		}
		if err != nil {
			panic(err)
		}
	}
	return s
}

// PlayStep is one step of MustPlay.
type PlayStep struct {
	Proc  process.ID
	Local int
	Verb  string
}

// Ok, Failv, Comp, C, Ab and A build PlaySteps tersely.
func Ok(p process.ID, l int) PlayStep    { return PlayStep{p, l, "ok"} }
func Failv(p process.ID, l int) PlayStep { return PlayStep{p, l, "fail"} }
func Comp(p process.ID, l int) PlayStep  { return PlayStep{p, l, "comp"} }
func C(p process.ID) PlayStep            { return PlayStep{p, 0, "C"} }
func Ab(p process.ID) PlayStep           { return PlayStep{p, 0, "abort"} }
func A(p process.ID) PlayStep            { return PlayStep{p, 0, "A"} }

// Replay replays events against fresh instances of the given processes,
// validating legality (Definition 7.1). It returns the resulting
// instances.
func Replay(procs map[process.ID]*process.Process, events []Event) (map[process.ID]*process.Instance, error) {
	insts := make(map[process.ID]*process.Instance, len(procs))
	for id, p := range procs {
		insts[id] = process.NewInstance(p)
	}
	for i, e := range events {
		in := insts[e.Proc]
		if in == nil && e.Type != GroupAbort {
			return nil, fmt.Errorf("schedule: event %d references unknown process %s", i, e.Proc)
		}
		switch e.Type {
		case Invoke:
			if e.Inverse {
				if err := in.MarkCompensated(e.Local); err != nil {
					return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
				}
				continue
			}
			// Regular invocation must be enabled: either on the frontier
			// or a forward-recovery invocation during an abort.
			if in.Aborting() {
				if err := in.MarkCommitted(e.Local); err != nil {
					return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
				}
				continue
			}
			if !contains(in.Frontier(), e.Local) {
				return nil, fmt.Errorf("schedule: event %d (%s): activity not enabled (violates ≪_%s or ◁_%s)", i, e.Label(), e.Proc, e.Proc)
			}
			if err := in.MarkCommitted(e.Local); err != nil {
				return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
			}
		case FailedInvoke:
			if !contains(in.Frontier(), e.Local) {
				return nil, fmt.Errorf("schedule: event %d (%s): activity not enabled", i, e.Label())
			}
			if _, err := in.MarkFailed(e.Local); err != nil {
				return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
			}
		case AbortBegin:
			if _, err := in.Abort(); err != nil {
				return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
			}
		case Terminate:
			if in.Terminated() {
				return nil, fmt.Errorf("schedule: event %d: process %s already terminated", i, e.Proc)
			}
			if e.Committed && (!in.Done() || in.Aborting()) {
				return nil, fmt.Errorf("schedule: event %d: C_%s before the process is done", i, e.Proc)
			}
			if !e.Committed && !in.Aborting() {
				return nil, fmt.Errorf("schedule: event %d: abort termination of %s without an abort", i, e.Proc)
			}
			in.MarkTerminated(e.Committed)
		case GroupAbort:
			// The set-oriented abort A(P_{n_1} … P_{n_s}) of Definition
			// 8.2b: every member process begins its abort; the appended
			// completion activities follow.
			for _, id := range e.Group {
				member := insts[id]
				if member == nil {
					return nil, fmt.Errorf("schedule: event %d: group abort of unknown process %s", i, id)
				}
				if member.Terminated() || member.Aborting() {
					continue
				}
				if _, err := member.Abort(); err != nil {
					return nil, fmt.Errorf("schedule: event %d (%s): %w", i, e.Label(), err)
				}
			}
		}
	}
	return insts, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Active returns the ids of processes that have events in the schedule
// but no Terminate event, in first-appearance order.
func (s *Schedule) Active() []process.ID {
	return activeIn(s.events)
}

func activeIn(events []Event) []process.ID {
	terminated := make(map[process.ID]bool)
	var order []process.ID
	seen := make(map[process.ID]bool)
	for _, e := range events {
		if e.Type == GroupAbort {
			continue
		}
		if !seen[e.Proc] {
			seen[e.Proc] = true
			order = append(order, e.Proc)
		}
		if e.Type == Terminate {
			terminated[e.Proc] = true
		}
	}
	var out []process.ID
	for _, id := range order {
		if !terminated[id] {
			out = append(out, id)
		}
	}
	return out
}

// Prefix returns the prefix schedule consisting of the first k events.
func (s *Schedule) Prefix(k int) *Schedule {
	if k > len(s.events) {
		k = len(s.events)
	}
	cp := &Schedule{
		Table:      s.Table,
		EffectFree: s.EffectFree,
		procs:      s.procs,
		order:      s.order,
		events:     append([]Event(nil), s.events[:k]...),
	}
	return cp
}

// conflictsEvents reports whether two events conflict under the table
// (both effectful, different processes, non-commuting services).
func (s *Schedule) conflictsEvents(a, b Event) bool {
	if !a.Effectful() || !b.Effectful() || a.Proc == b.Proc {
		return false
	}
	return s.Table.Conflicts(a.Service, b.Service)
}

// String renders the schedule in the paper's notation.
func (s *Schedule) String() string {
	parts := make([]string, len(s.events))
	for i, e := range s.events {
		parts[i] = e.Label()
	}
	return "⟨" + strings.Join(parts, " ") + "⟩"
}

// ConflictPairs returns the ordered conflicting pairs (i, j) of event
// indices with i < j, for display and testing.
func (s *Schedule) ConflictPairs() [][2]int {
	var out [][2]int
	for i := 0; i < len(s.events); i++ {
		for j := i + 1; j < len(s.events); j++ {
			if s.conflictsEvents(s.events[i], s.events[j]) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// SerializationGraph returns the process-level conflict graph: an edge
// P_i -> P_j for every conflicting pair with the P_i event first.
func (s *Schedule) SerializationGraph() *Graph {
	return graphOf(s.events, s.conflictsEvents)
}

// Serializable reports whether the schedule is conflict-equivalent to a
// serial execution of its processes: the serialization graph is acyclic
// (Section 3.2). This is the classical syntactic notion over all
// committed invocations including compensating activities; for schedules
// that contain compensations (aborted or recovered processes), use
// EffectiveSerializable, which corresponds to the committed projection
// of Theorem 1's proof.
func (s *Schedule) Serializable() bool {
	_, ok := s.SerializationGraph().TopoOrder()
	return ok
}

// EffectiveSerializable reports serializability of the schedule's
// effective part: effect-free compensation pairs are cancelled first (a
// backward-recovered process disappears entirely, exactly the committed
// projection used in the proof of Theorem 1), then the conflict graph of
// the remainder must be acyclic.
func (s *Schedule) EffectiveSerializable() bool {
	return s.Reduce().Serial
}

// Graph is a directed graph over process ids.
type Graph struct {
	nodes map[process.ID]bool
	adj   map[process.ID]map[process.ID]bool
	order []process.ID
}

func newGraph() *Graph {
	return &Graph{nodes: make(map[process.ID]bool), adj: make(map[process.ID]map[process.ID]bool)}
}

func graphOf(events []Event, conflicts func(a, b Event) bool) *Graph {
	g := newGraph()
	for _, e := range events {
		if e.Effectful() || e.Type == Terminate || e.Type == FailedInvoke {
			g.AddNode(e.Proc)
		}
	}
	for i := 0; i < len(events); i++ {
		for j := i + 1; j < len(events); j++ {
			if conflicts(events[i], events[j]) {
				g.AddEdge(events[i].Proc, events[j].Proc)
			}
		}
	}
	return g
}

// AddNode adds a node.
func (g *Graph) AddNode(n process.ID) {
	if !g.nodes[n] {
		g.nodes[n] = true
		g.order = append(g.order, n)
	}
}

// AddEdge adds edge a -> b (self edges are ignored).
func (g *Graph) AddEdge(a, b process.ID) {
	if a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	if g.adj[a] == nil {
		g.adj[a] = make(map[process.ID]bool)
	}
	g.adj[a][b] = true
}

// HasEdge reports whether edge a -> b exists.
func (g *Graph) HasEdge(a, b process.ID) bool { return g.adj[a][b] }

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []process.ID { return append([]process.ID(nil), g.order...) }

// Edges returns the edges sorted lexicographically.
func (g *Graph) Edges() [][2]process.ID {
	var out [][2]process.ID
	for a, m := range g.adj {
		for b := range m {
			out = append(out, [2]process.ID{a, b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TopoOrder returns a topological order of the nodes and whether the
// graph is acyclic. Ties are broken by insertion order, so the result is
// deterministic.
func (g *Graph) TopoOrder() ([]process.ID, bool) {
	indeg := make(map[process.ID]int, len(g.order))
	for _, n := range g.order {
		indeg[n] = 0
	}
	for _, m := range g.adj {
		for b := range m {
			indeg[b]++
		}
	}
	var out []process.ID
	used := make(map[process.ID]bool)
	for len(out) < len(g.order) {
		picked := false
		for _, n := range g.order {
			if !used[n] && indeg[n] == 0 {
				used[n] = true
				out = append(out, n)
				for b := range g.adj[n] {
					indeg[b]--
				}
				picked = true
				break
			}
		}
		if !picked {
			return nil, false
		}
	}
	return out, true
}

// DOT renders the graph in Graphviz dot syntax, for visualizing
// serialization graphs of process schedules.
func (g *Graph) DOT(name string) string {
	s := "digraph " + name + " {\n"
	for _, n := range g.Nodes() {
		s += fmt.Sprintf("  %q;\n", string(n))
	}
	for _, e := range g.Edges() {
		s += fmt.Sprintf("  %q -> %q;\n", string(e[0]), string(e[1]))
	}
	return s + "}\n"
}

// WouldCreateCycle reports whether adding edge a -> b would close a cycle
// (i.e., b already reaches a).
func (g *Graph) WouldCreateCycle(a, b process.ID) bool {
	if a == b {
		return false
	}
	// DFS from b looking for a.
	stack := []process.ID{b}
	seen := make(map[process.ID]bool)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == a {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for m := range g.adj[n] {
			stack = append(stack, m)
		}
	}
	return false
}
