package schedule

import (
	"fmt"
	"strings"
)

// Reduction is the result of applying the three transformation rules of
// Definition 9 to a completed process schedule: the commutativity rule
// (adjacent commuting activities may be swapped), the compensation rule
// (an activity and its compensating activity with nothing conflicting
// between them are removed), and the effect-free activity rule
// (effect-free activities of non-committing processes are removed).
type Reduction struct {
	// Remaining holds the events that survive reduction.
	Remaining []Event
	// RemovedPairs counts compensation-rule removals.
	RemovedPairs int
	// RemovedEffectFree counts effect-free-rule removals.
	RemovedEffectFree int
	// Serial reports whether the remaining events are
	// conflict-equivalent to a serial process schedule (the commutativity
	// rule can then produce it).
	Serial bool
	// SerialOrder is a witness serialization order when Serial.
	SerialOrder []string
}

// Reduce applies the reduction rules of Definition 9 to the schedule
// (which should be a completed schedule) until fixpoint and reports
// whether the remainder is serializable.
//
// The compensation rule is decided as: a pair (a, a⁻¹) of the same
// activity instance is removable iff no event ordered between them
// conflicts with a — any non-conflicting in-between event can be
// commuted out by the commutativity rule, while a conflicting one can
// cross neither boundary (perfect commutativity makes "conflicts with a"
// and "conflicts with a⁻¹" the same predicate). Removal is applied
// innermost-first and iterated, which handles nested compensation.
func (s *Schedule) Reduce() *Reduction {
	events := append([]Event(nil), s.events...)
	red := &Reduction{}

	committed := make(map[string]bool) // procs that commit regularly
	for _, e := range events {
		if e.Type == Terminate && e.Committed {
			committed[string(e.Proc)] = true
		}
	}

	// Effect-free activity rule (Definition 9.3): remove effect-free
	// activities of processes that do not commit regularly in S.
	if s.EffectFree != nil {
		kept := events[:0]
		for _, e := range events {
			if e.Type == Invoke && !e.Inverse && !committed[string(e.Proc)] && s.EffectFree(e.Service) {
				red.RemovedEffectFree++
				continue
			}
			kept = append(kept, e)
		}
		events = kept
	}

	// Compensation rule (Definition 9.2) to fixpoint.
	for {
		removed := false
		for i := 0; i < len(events) && !removed; i++ {
			e := events[i]
			if e.Type != Invoke || e.Inverse {
				continue
			}
			// Find this instance's compensation later in the sequence.
			for j := i + 1; j < len(events); j++ {
				f := events[j]
				if f.Type == Invoke && f.Inverse && f.Proc == e.Proc && f.Local == e.Local {
					blocked := false
					for k := i + 1; k < j; k++ {
						if s.conflictsAny(events[k], e) {
							blocked = true
							break
						}
					}
					if !blocked {
						events = append(events[:j:j], events[j+1:]...)
						events = append(events[:i:i], events[i+1:]...)
						red.RemovedPairs++
						removed = true
					}
					break
				}
			}
		}
		if !removed {
			break
		}
	}

	red.Remaining = events
	g := graphOf(events, s.conflictsEvents)
	order, ok := g.TopoOrder()
	red.Serial = ok
	if ok {
		for _, id := range order {
			red.SerialOrder = append(red.SerialOrder, string(id))
		}
	}
	return red
}

// conflictsAny is like conflictsEvents but also treats same-process
// events as blocking when they conflict by service: an event of the same
// process that does not commute with the pair cannot be commuted across
// it either.
func (s *Schedule) conflictsAny(a, b Event) bool {
	if !a.Effectful() || !b.Effectful() {
		return false
	}
	if a.Proc == b.Proc && a.Local == b.Local {
		return false // the pair itself
	}
	return s.Table.Conflicts(a.Service, b.Service)
}

// RED reports whether the schedule is reducible (Definition 9): its
// completed process schedule can be transformed into a serial process
// schedule by the three reduction rules.
func (s *Schedule) RED() (bool, *Reduction, error) {
	comp, err := s.Completed()
	if err != nil {
		return false, nil, err
	}
	red := comp.Reduce()
	return red.Serial, red, nil
}

// PRED reports whether the schedule is prefix-reducible (Definition 10):
// every prefix of S is reducible. On failure it returns the length of
// the shortest non-reducible prefix and its reduction.
func (s *Schedule) PRED() (bool, int, *Reduction, error) {
	for k := 1; k <= len(s.events); k++ {
		prefix := s.Prefix(k)
		ok, red, err := prefix.RED()
		if err != nil {
			return false, k, nil, fmt.Errorf("prefix of length %d: %w", k, err)
		}
		if !ok {
			return false, k, red, nil
		}
	}
	return true, 0, nil, nil
}

// Describe renders the reduction result for human consumption.
func (r *Reduction) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "removed %d compensation pair(s), %d effect-free activitie(s); %d event(s) remain",
		r.RemovedPairs, r.RemovedEffectFree, len(r.Remaining))
	if r.Serial {
		fmt.Fprintf(&b, "; serializable as %s", strings.Join(r.SerialOrder, " → "))
	} else {
		b.WriteString("; NOT serializable (conflict cycle remains)")
	}
	return b.String()
}
