// Package schedule implements the process-schedule theory of the paper:
// process schedules (Definition 7), conflict-based serializability,
// completed process schedules S̃ (Definition 8), the reduction rules and
// reducibility RED (Definition 9), prefix-reducibility PRED
// (Definition 10) and process-recoverability Proc-REC (Definition 11).
package schedule

import (
	"fmt"

	"transproc/internal/activity"
	"transproc/internal/process"
)

// EventType classifies schedule events.
type EventType int

const (
	// Invoke is a committed activity invocation (a regular activity or,
	// with Inverse set, a compensating activity a⁻¹).
	Invoke EventType = iota
	// FailedInvoke records the permanent failure of an activity. Failed
	// invocations aborted atomically in the subsystem and have no
	// effects; they do not participate in conflicts but drive the
	// process's alternative selection during replay.
	FailedInvoke
	// AbortBegin is the abort activity A_i of a process: the request to
	// terminate the process for recovery purposes. In the completed
	// schedule it is replaced by the activities of the completion
	// C(P_i) (Definition 8.2a/8.2c).
	AbortBegin
	// Terminate is the termination event of a process: C_i, or the end
	// of an abort's completion (which Definition 8.2c also turns into
	// C_i in the completed schedule).
	Terminate
	// GroupAbort is the set-oriented abort A(P_{n_1} … P_{n_s}) added to
	// the end of a schedule when completing it (Definition 8.2b).
	GroupAbort
)

// String returns a short label for the event type.
func (t EventType) String() string {
	switch t {
	case Invoke:
		return "invoke"
	case FailedInvoke:
		return "fail"
	case AbortBegin:
		return "abort"
	case Terminate:
		return "terminate"
	case GroupAbort:
		return "group-abort"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one element of a process schedule. The slice order of events
// in a Schedule is the observed total order; the schedule's partial order
// ≪_S is induced from it (intra-process orders plus conflict pairs).
type Event struct {
	Type EventType
	Proc process.ID
	// Local is the activity id within the process; for Inverse events it
	// is the id of the compensated activity.
	Local int
	// Service is the invoked service (the compensating service for
	// Inverse events).
	Service string
	// Kind is the termination guarantee of the invoked activity
	// (activity.Compensation for Inverse events).
	Kind activity.Kind
	// Inverse marks a compensating activity a⁻¹.
	Inverse bool
	// Committed is set on Terminate events that conclude a regular
	// execution path; false means the termination concluded an abort's
	// completion.
	Committed bool
	// Group lists the aborted processes of a GroupAbort event.
	Group []process.ID
}

// Effectful reports whether the event is a committed (possibly
// compensating) activity invocation, i.e. participates in the conflict
// relation.
func (e Event) Effectful() bool { return e.Type == Invoke }

// Label renders the event in the paper's notation, e.g. "a_{1_3}",
// "a_{1_3}⁻¹", "C_1", "A(P1,P2)".
func (e Event) Label() string {
	switch e.Type {
	case Invoke:
		if e.Inverse {
			return fmt.Sprintf("a_{%s_%d}⁻¹", trimP(e.Proc), e.Local)
		}
		return fmt.Sprintf("a_{%s_%d}^%s", trimP(e.Proc), e.Local, e.Kind)
	case FailedInvoke:
		return fmt.Sprintf("a_{%s_%d}✗", trimP(e.Proc), e.Local)
	case AbortBegin:
		return fmt.Sprintf("A_%s", trimP(e.Proc))
	case Terminate:
		if e.Committed {
			return fmt.Sprintf("C_%s", trimP(e.Proc))
		}
		return fmt.Sprintf("C_%s(ab)", trimP(e.Proc))
	case GroupAbort:
		s := "A("
		for i, p := range e.Group {
			if i > 0 {
				s += ","
			}
			s += string(p)
		}
		return s + ")"
	default:
		return "?"
	}
}

func trimP(id process.ID) string {
	s := string(id)
	// "P1" renders as "1" to match the paper's a_{1_3} notation; names
	// that do not look like P<number> are kept as-is.
	if len(s) > 1 && (s[0] == 'P' || s[0] == 'p') && s[1] >= '0' && s[1] <= '9' {
		return s[1:]
	}
	return s
}
