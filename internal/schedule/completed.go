package schedule

import (
	"fmt"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/process"
)

// Completed constructs the completed process schedule S̃ of S
// (Definition 8): all activities of S are kept except abort activities
// (8.2a); all active processes are treated as aborted by a set-oriented
// group abort appended at the end of S (8.2b); for every process that
// does not commit regularly, the activities of its completion C(P_i) are
// added, ordered after the process's original activities and before its
// C_i (8.2c, 8.3b, 8.3c); conflicting activities of different
// completions are ordered (8.3d/8.3f) — canonically, per Lemmas 2 and 3:
// compensating activities in reverse order of their base activities and
// before conflicting retriable forward-recovery activities, with
// forward-recovery activities following the serialization order of their
// processes. The canonical order is without loss of generality: the
// lemmas show any order violating it cannot be reduced.
//
// The result is a new Schedule whose event sequence realizes ≪̃_S; the
// original schedule is not modified.
func (s *Schedule) Completed() (*Schedule, error) {
	insts, err := Replay(s.procs, s.events)
	if err != nil {
		return nil, fmt.Errorf("schedule: completing an illegal schedule: %w", err)
	}

	out := &Schedule{
		Table:      s.Table,
		EffectFree: s.EffectFree,
		procs:      s.procs,
		order:      s.order,
	}
	// 8.2a drops the abort activities A_i because the completion
	// replaces them; we keep them as inert markers so that the completed
	// schedule remains replayable (they carry no conflicts and do not
	// affect any criterion).
	out.events = append(out.events, s.events...)

	active := activeIn(s.events)
	if len(active) == 0 {
		return out, nil
	}

	// 8.2b: group abort of all active processes.
	out.events = append(out.events, Event{Type: GroupAbort, Group: append([]process.ID(nil), active...)})

	// Gather the completion steps of every active process.
	var completions []pendingSteps
	for _, id := range active {
		steps, err := insts[id].Completion()
		if err != nil {
			return nil, fmt.Errorf("schedule: completion of %s: %w", id, err)
		}
		completions = append(completions, pendingSteps{id, steps})
	}

	// Canonical order. Phase A: compensations of all completions, in
	// reverse order of their base activities' positions in S (Lemma 2).
	// Phase B: forward-recovery invocations, grouped by process in
	// serialization order (ties by first appearance), each process's
	// steps in their completion order (8.3b). StepAbortPrepared does not
	// occur in theory-level schedules (no prepared state) and is
	// ignored if present: an aborted prepared transaction has no
	// effects and therefore no schedule event.
	pos := make(map[string]int) // "proc/local" -> last Invoke position
	for i, e := range out.events {
		if e.Type == Invoke && !e.Inverse {
			pos[fmt.Sprintf("%s/%d", e.Proc, e.Local)] = i
		}
	}
	var comps []compStepG
	var forwards []pendingSteps
	for _, c := range completions {
		fw := pendingSteps{proc: c.proc}
		for _, st := range c.steps {
			switch st.Kind {
			case process.StepCompensate:
				comps = append(comps, compStepG{c.proc, st, pos[fmt.Sprintf("%s/%d", c.proc, st.Local)]})
			case process.StepInvoke:
				fw.steps = append(fw.steps, st)
			}
		}
		forwards = append(forwards, fw)
	}
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].at > comps[j].at })

	serOrder := s.completionRank(comps2locals(comps), forwards)
	sort.SliceStable(forwards, func(i, j int) bool { return serOrder[forwards[i].proc] < serOrder[forwards[j].proc] })

	for _, c := range comps {
		p := s.procs[c.proc]
		a := p.Activity(c.st.Local)
		out.events = append(out.events, Event{
			Type: Invoke, Proc: c.proc, Local: c.st.Local,
			Service: c.st.Service, Kind: activity.Compensation, Inverse: true,
		})
		_ = a
	}
	for _, fw := range forwards {
		p := s.procs[fw.proc]
		for _, st := range fw.steps {
			a := p.Activity(st.Local)
			out.events = append(out.events, Event{
				Type: Invoke, Proc: fw.proc, Local: st.Local,
				Service: st.Service, Kind: a.Kind,
			})
		}
	}
	// 8.2c: the aborted processes terminate with C_i, in serialization
	// order.
	terms := append([]process.ID(nil), active...)
	sort.SliceStable(terms, func(i, j int) bool { return serOrder[terms[i]] < serOrder[terms[j]] })
	for _, id := range terms {
		out.events = append(out.events, Event{Type: Terminate, Proc: id, Committed: false})
	}
	return out, nil
}

// pendingSteps is one active process's completion (or its forward part).
type pendingSteps struct {
	proc  process.ID
	steps []process.Step
}

// compStepG is a compensation step with the schedule position of its
// base activity.
type compStepG struct {
	proc process.ID
	st   process.Step
	at   int
}

func comps2locals(comps []compStepG) map[process.ID]map[int]bool {
	out := make(map[process.ID]map[int]bool)
	for _, c := range comps {
		if out[c.proc] == nil {
			out[c.proc] = make(map[int]bool)
		}
		out[c.proc][c.st.Local] = true
	}
	return out
}

// completionRank orders the forward phases of the active processes'
// completions (realizing the free choices of Definition 8.3d/8.3f so
// that reducibility is preserved whenever possible): it topologically
// sorts the graph whose edges are
//
//   - conflicts between *surviving* executed activities (those neither
//     compensated in S nor scheduled for compensation by a completion —
//     a compensation pair cancels and orders nothing), and
//   - conflicts between a surviving executed activity of p and a forward
//     step of r (mandatory p → r: the step is appended after it).
//
// On a cycle the first-appearance order is used; the reduction will then
// fail, which is the correct verdict.
func (s *Schedule) completionRank(toCompensate map[process.ID]map[int]bool, forwards []pendingSteps) map[process.ID]int {
	compensatedInS := make(map[process.ID]map[int]bool)
	for _, e := range s.events {
		if e.Type == Invoke && e.Inverse {
			if compensatedInS[e.Proc] == nil {
				compensatedInS[e.Proc] = make(map[int]bool)
			}
			compensatedInS[e.Proc][e.Local] = true
		}
	}
	surviving := func(e Event) bool {
		if e.Type != Invoke || e.Inverse {
			return false
		}
		return !compensatedInS[e.Proc][e.Local] && !toCompensate[e.Proc][e.Local]
	}
	g := newGraph()
	for _, id := range s.order {
		g.AddNode(id)
	}
	for i := 0; i < len(s.events); i++ {
		if !surviving(s.events[i]) {
			continue
		}
		for j := i + 1; j < len(s.events); j++ {
			if !surviving(s.events[j]) {
				continue
			}
			if s.conflictsEvents(s.events[i], s.events[j]) {
				g.AddEdge(s.events[i].Proc, s.events[j].Proc)
			}
		}
		// Mandatory edges against forward steps.
		for _, fw := range forwards {
			if fw.proc == s.events[i].Proc {
				continue
			}
			for _, st := range fw.steps {
				if s.Table.Conflicts(s.events[i].Service, st.Service) {
					g.AddEdge(s.events[i].Proc, fw.proc)
					break
				}
			}
		}
	}
	rank := make(map[process.ID]int, len(s.order))
	if topo, ok := g.TopoOrder(); ok {
		for i, id := range topo {
			rank[id] = i
		}
	}
	base := len(rank)
	for i, id := range s.order {
		if _, seen := rank[id]; !seen {
			rank[id] = base + i
		}
	}
	return rank
}
