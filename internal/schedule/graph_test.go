package schedule_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

func TestCompletedScheduleKeepsAbortMarkers(t *testing.T) {
	t.Parallel()
	// An explicit abort leaves A_i in the schedule; the completed
	// schedule keeps it as an inert marker so S̃ remains replayable, and
	// completing is idempotent.
	s := schedule.MustNew(paper.Conflicts(), paper.P2())
	s.MustPlay(
		schedule.Ok("P2", 1),
		schedule.Ab("P2"),
		schedule.Comp("P2", 1),
		schedule.A("P2"),
	)
	comp, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.String(), "A_2") {
		t.Fatalf("abort marker lost: %s", comp)
	}
	comp2, err := comp.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if comp2.Len() != comp.Len() {
		t.Fatal("completion must be idempotent")
	}
}

func TestGroupAbortReplayUnknownMember(t *testing.T) {
	t.Parallel()
	s := schedule.MustNew(paper.Conflicts(), paper.P2())
	evs := []schedule.Event{
		{Type: schedule.GroupAbort, Group: []process.ID{"GHOST"}},
	}
	if _, err := schedule.Replay(map[process.ID]*process.Process{"P2": paper.P2()}, evs); err == nil {
		t.Fatal("group abort of an unknown process must be rejected")
	}
	_ = s
}

func TestPrefixOfCompletedIsReducibleForPREDSchedule(t *testing.T) {
	t.Parallel()
	// For a schedule that is PRED, completing any prefix yields a
	// reducible schedule by definition; verify on Figure 7's S''.
	s := fig7(t)
	for k := 1; k <= s.Len(); k++ {
		pre := s.Prefix(k)
		comp, err := pre.Completed()
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if red := comp.Reduce(); !red.Serial {
			t.Fatalf("prefix %d not reducible: %s", k, red.Describe())
		}
	}
}

func TestSelfConflictOrdersSameService(t *testing.T) {
	t.Parallel()
	tab := conflict.NewTable()
	tab.AddConflict("w", "w")
	p1 := process.NewBuilder("P1").Add(1, "w", activity.Pivot).MustBuild()
	p2 := process.NewBuilder("P2").Add(1, "w", activity.Pivot).MustBuild()
	s := schedule.MustNew(tab, p1, p2)
	s.MustPlay(schedule.Ok("P1", 1), schedule.Ok("P2", 1))
	g := s.SerializationGraph()
	if !g.HasEdge("P1", "P2") {
		t.Fatal("self-conflicting service must order the processes")
	}
	if !s.Serializable() {
		t.Fatal("one-directional order is serializable")
	}
}

func TestReductionDescribeNegative(t *testing.T) {
	t.Parallel()
	s := fig4b(t)
	red := s.Reduce()
	if red.Serial {
		t.Fatal("Figure 4(b) must not reduce to serial")
	}
	if !strings.Contains(red.Describe(), "NOT serializable") {
		t.Fatalf("describe = %q", red.Describe())
	}
}

func TestEventLabelVariants(t *testing.T) {
	t.Parallel()
	cases := []struct {
		e    schedule.Event
		want string
	}{
		{schedule.Event{Type: schedule.Invoke, Proc: "P1", Local: 2, Kind: activity.Pivot}, "a_{1_2}^p"},
		{schedule.Event{Type: schedule.Invoke, Proc: "Order", Local: 1, Inverse: true}, "a_{Order_1}⁻¹"},
		{schedule.Event{Type: schedule.FailedInvoke, Proc: "P3", Local: 4}, "a_{3_4}✗"},
		{schedule.Event{Type: schedule.AbortBegin, Proc: "P9"}, "A_9"},
		{schedule.Event{Type: schedule.Terminate, Proc: "P1", Committed: true}, "C_1"},
		{schedule.Event{Type: schedule.Terminate, Proc: "P1"}, "C_1(ab)"},
		{schedule.Event{Type: schedule.GroupAbort, Group: []process.ID{"P1", "P2"}}, "A(P1,P2)"},
	}
	for _, c := range cases {
		if got := c.e.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}

func TestEventTypeStrings(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		tp   schedule.EventType
		want string
	}{
		{schedule.Invoke, "invoke"},
		{schedule.FailedInvoke, "fail"},
		{schedule.AbortBegin, "abort"},
		{schedule.Terminate, "terminate"},
		{schedule.GroupAbort, "group-abort"},
	} {
		if c.tp.String() != c.want {
			t.Errorf("%d = %q, want %q", int(c.tp), c.tp.String(), c.want)
		}
	}
}
