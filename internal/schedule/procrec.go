package schedule

import (
	"fmt"

	"transproc/internal/process"
)

// ProcRecViolation describes one violation of process-recoverability.
type ProcRecViolation struct {
	Rule   int // 1 or 2, per Definition 11
	Detail string
	// I and J are the event indices of the conflicting pair a_{i_k} ≪_S
	// a_{j_l} that the violation concerns.
	I, J int
	// At is the event index at which the violation manifests: the index
	// of C_j (rule 1) or of a_{j_m} (rule 2).
	At int
}

// ProcessRecoverable checks process-recoverability (Definition 11): for
// each pair of conflicting activities a_{i_k} ≪_S a_{j_l} of processes
// P_i and P_j:
//
//  1. C_i precedes C_j in S; and
//  2. the next non-compensatable activity a_{j_m} of P_j following
//     a_{j_l} succeeds in S the next non-compensatable activity a_{i_n}
//     of P_i following a_{i_k}.
//
// The check is meaningful on complete schedules (every process
// terminated); on incomplete schedules it reports the violations
// already visible. It returns true with no violations when the schedule
// is process-recoverable.
func (s *Schedule) ProcessRecoverable() (bool, []ProcRecViolation) {
	var violations []ProcRecViolation

	termAt := make(map[string]int)
	for i, e := range s.events {
		if e.Type == Terminate {
			termAt[string(e.Proc)] = i
		}
	}

	for i := 0; i < len(s.events); i++ {
		for j := i + 1; j < len(s.events); j++ {
			ei, ej := s.events[i], s.events[j]
			if !s.conflictsEvents(ei, ej) {
				continue
			}
			// Rule 1: C_i ≪_S C_j.
			ti, iOK := termAt[string(ei.Proc)]
			tj, jOK := termAt[string(ej.Proc)]
			switch {
			case jOK && !iOK:
				violations = append(violations, ProcRecViolation{
					Rule: 1, I: i, J: j, At: tj,
					Detail: fmt.Sprintf("%s ≪ %s but %s terminated while %s is still active",
						ei.Label(), ej.Label(), ej.Proc, ei.Proc),
				})
			case jOK && iOK && tj < ti:
				violations = append(violations, ProcRecViolation{
					Rule: 1, I: i, J: j, At: tj,
					Detail: fmt.Sprintf("%s ≪ %s but C_%s ≪ C_%s",
						ei.Label(), ej.Label(), trimP(ej.Proc), trimP(ei.Proc)),
				})
			}
			// Rule 2: the next executed non-compensatable of P_j after
			// a_{j_l} must follow the next executed non-compensatable of
			// P_i after a_{i_k}.
			jm := s.nextNonCompensatable(j, ej)
			if jm < 0 {
				continue
			}
			in := s.nextNonCompensatable(i, ei)
			if in < 0 {
				// P_i never executed a following non-compensatable
				// activity; if P_i terminated, rule 2 is vacuous, but if
				// P_i is still active the commit of a_{j_m} has outrun a
				// possibly pending one (covered by rule 1 once P_j
				// terminates), so only flag it when P_i later executes
				// one — which "in < 0" excludes.
				continue
			}
			if jm < in {
				violations = append(violations, ProcRecViolation{
					Rule: 2, I: i, J: j, At: jm,
					Detail: fmt.Sprintf("%s ≪ %s but non-compensatable %s precedes %s",
						ei.Label(), ej.Label(), s.events[jm].Label(), s.events[in].Label()),
				})
			}
		}
	}
	return len(violations) == 0, violations
}

// ViolationMaterialized reports whether a process-recoverability
// violation actually endangers reducibility: Definition 11 is the
// *syntactic* sufficient condition a scheduler enforces because "the
// activities of the completion of a process are not known in advance"
// (Section 3.5). A concrete schedule that violates it can still be PRED
// when, at the point the violation manifests, the completion of the
// earlier process P_i contains no activity conflicting with the later
// process P_j — the potential cycle of Theorem 1's proof never
// materializes. This predicate decides exactly that, so that
// PRED ⇒ serializable ∧ (Proc-REC up to non-materialized violations)
// is a strict, testable form of Theorem 1.
func (s *Schedule) ViolationMaterialized(v ProcRecViolation) bool {
	ei, ej := s.events[v.I], s.events[v.J]
	cut := v.At // prefix up to but excluding the offending event
	prefix := s.events[:cut]
	insts, err := Replay(s.procs, prefix)
	if err != nil {
		return true // be conservative
	}
	in := insts[ei.Proc]
	if in == nil || in.Terminated() {
		return false
	}
	steps, err := in.Completion()
	if err != nil {
		return true
	}
	// Effective activities of P_j within the prefix: executed and not
	// compensated away (a compensated activity forms an effect-free
	// pair and cannot participate in a conflict cycle). The pair's
	// a_{j_l} itself is included on the same condition. Activities that
	// a process's *own* completion is about to compensate are equally
	// non-effective: their pairs cancel during completion.
	compensated := make(map[string]map[int]bool)
	markComp := func(proc string, local int) {
		if compensated[proc] == nil {
			compensated[proc] = make(map[int]bool)
		}
		compensated[proc][local] = true
	}
	for _, e := range prefix {
		if e.Type == Invoke && e.Inverse {
			markComp(string(e.Proc), e.Local)
		}
	}
	for _, st := range steps {
		if st.Kind == process.StepCompensate {
			markComp(string(ei.Proc), st.Local)
		}
	}
	if jin := insts[ej.Proc]; jin != nil && !jin.Terminated() {
		if jSteps, err := jin.Completion(); err == nil {
			for _, st := range jSteps {
				if st.Kind == process.StepCompensate {
					markComp(string(ej.Proc), st.Local)
				}
			}
		}
	}
	type jEvent struct {
		service string
		pos     int
	}
	var jEvents []jEvent
	for pos, e := range prefix {
		if e.Proc == ej.Proc && e.Effectful() && !e.Inverse && !compensated[string(e.Proc)][e.Local] {
			jEvents = append(jEvents, jEvent{e.Service, pos})
		}
	}
	if !compensated[string(ej.Proc)][ej.Local] {
		jEvents = append(jEvents, jEvent{ej.Service, v.J})
	}

	// A conflict between P_i's completion and P_j's surviving work only
	// closes a cycle when a surviving conflicting pair still orders
	// P_i before P_j at the cut: otherwise the completion merely orders
	// P_j before P_i, which is harmless.
	orderedBefore := false
	for a := 0; a < len(prefix) && !orderedBefore; a++ {
		ea := prefix[a]
		if ea.Proc != ei.Proc || !ea.Effectful() || ea.Inverse || compensated[string(ea.Proc)][ea.Local] {
			continue
		}
		for b := a + 1; b < len(prefix); b++ {
			eb := prefix[b]
			if eb.Proc != ej.Proc || !eb.Effectful() || eb.Inverse || compensated[string(eb.Proc)][eb.Local] {
				continue
			}
			if s.conflictsEvents(ea, eb) {
				orderedBefore = true
				break
			}
		}
	}
	if !orderedBefore {
		return false
	}
	basePos := make(map[int]int)
	for pos, e := range prefix {
		if e.Proc == ei.Proc && e.Type == Invoke && !e.Inverse {
			basePos[e.Local] = pos
		}
	}
	for _, st := range steps {
		if st.Kind == process.StepAbortPrepared { // no effects
			continue
		}
		for _, je := range jEvents {
			if !s.Table.Conflicts(st.Service, je.service) {
				continue
			}
			if st.Kind == process.StepCompensate && je.pos > basePos[st.Local] {
				// The conflicting P_j event sits between the base and
				// its appended compensation: the pair is blocked.
				return true
			}
			if st.Kind == process.StepInvoke {
				// A forward-recovery activity appended after the
				// conflicting event closes the cycle with the
				// surviving P_i → P_j order.
				return true
			}
		}
	}
	return false
}

// nextNonCompensatable returns the index of the first Invoke event of
// the same process after position k whose activity is
// non-compensatable in the precedence order following the activity at k
// (or any later one of that process when the anchor event is itself a
// completion step), or -1.
func (s *Schedule) nextNonCompensatable(k int, anchor Event) int {
	p := s.procs[anchor.Proc]
	for m := k + 1; m < len(s.events); m++ {
		e := s.events[m]
		if e.Proc != anchor.Proc || e.Type != Invoke || e.Inverse {
			continue
		}
		a := p.Activity(e.Local)
		if a == nil || !a.Kind.NonCompensatable() {
			continue
		}
		// "following a_{j_l}": by the process's precedence order when
		// comparable; completion activities executed later count as
		// following.
		if anchor.Inverse || p.Before(anchor.Local, e.Local) || !p.Before(e.Local, anchor.Local) {
			return m
		}
	}
	return -1
}
