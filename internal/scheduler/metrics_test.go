package scheduler_test

import (
	"testing"

	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// instrumentedRun executes a fault-injected workload with a registry
// large enough to retain the full decision trace.
func instrumentedRun(t *testing.T, seed int64, mode scheduler.Mode, weak bool) (*scheduler.Result, *metrics.Registry) {
	t.Helper()
	p := workload.DefaultProfile(seed)
	p.PermFailureProb = 0.15
	p.TransientFailureProb = 0.1
	w := workload.MustGenerate(p)
	reg := metrics.NewSized(1 << 16)
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode, Metrics: reg, WeakOrder: weak})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res, reg
}

// TestMetricsInvariants cross-checks the registry against the engine's
// own per-run metrics and the observed schedule after fault-injected
// runs: every view of the run must tell the same story.
func TestMetricsInvariants(t *testing.T) {
	for _, mode := range []scheduler.Mode{scheduler.PRED, scheduler.PREDCascade} {
		for seed := int64(1); seed <= 6; seed++ {
			res, reg := instrumentedRun(t, seed, mode, false)
			m := res.Metrics

			// Compensations: engine counter == registry counter ==
			// decision-trace events == inverse invokes in the schedule.
			comp := reg.Counter(metrics.CompensationsIssued)
			if comp != m.Compensations {
				t.Errorf("%v seed %d: registry compensations %d, engine %d", mode, seed, comp, m.Compensations)
			}
			if tr := reg.CountTrace(metrics.TCompensate); tr != comp {
				t.Errorf("%v seed %d: compensation trace events %d, counter %d", mode, seed, tr, comp)
			}
			inverse := int64(0)
			for _, ev := range res.Schedule.Events() {
				if ev.Inverse {
					inverse++
				}
			}
			if inverse != comp {
				t.Errorf("%v seed %d: schedule has %d inverse invokes, counter %d", mode, seed, inverse, comp)
			}

			// Lemma-1 deferral accounting: every deferred commit resolves
			// exactly once, to a 2PC commit or a rollback.
			deferred := reg.Counter(metrics.CommitsDeferred)
			resolved := reg.Counter(metrics.DeferredCommitted2PC) + reg.Counter(metrics.DeferredRolledBack)
			if deferred != resolved {
				t.Errorf("%v seed %d: %d deferred commits but %d resolutions (2pc %d + rollback %d)",
					mode, seed, deferred, resolved,
					reg.Counter(metrics.DeferredCommitted2PC), reg.Counter(metrics.DeferredRolledBack))
			}
			if got := reg.Counter(metrics.DeferredCommitted2PC); got != m.TwoPCCommits {
				t.Errorf("%v seed %d: registry 2PC commits %d, engine %d", mode, seed, got, m.TwoPCCommits)
			}
			if deferred != m.Deferrals {
				t.Errorf("%v seed %d: registry deferrals %d, engine %d", mode, seed, deferred, m.Deferrals)
			}

			// Process lifecycle: every admitted process terminates, and
			// the schedule agrees.
			admitted := reg.Counter(metrics.ProcsAdmitted)
			done := reg.Counter(metrics.ProcsCommitted) + reg.Counter(metrics.ProcsAborted)
			if admitted != done {
				t.Errorf("%v seed %d: %d admitted, %d terminated", mode, seed, admitted, done)
			}
			if got := int(reg.Counter(metrics.ProcsCommitted)); got != m.CommittedProcs {
				t.Errorf("%v seed %d: registry committed %d, engine %d", mode, seed, got, m.CommittedProcs)
			}
			if tr := reg.CountTrace(metrics.TTerminate); tr != done {
				t.Errorf("%v seed %d: %d terminate trace events, %d terminations", mode, seed, tr, done)
			}

			// The duration histogram sees one observation per termination.
			if h := reg.Hist(metrics.HistProcDuration); h.Count != done {
				t.Errorf("%v seed %d: duration histogram count %d, terminations %d", mode, seed, h.Count, done)
			}

			// Dispatch/trace agreement.
			if d, tr := reg.Counter(metrics.InvokeDispatched), reg.CountTrace(metrics.TDispatch); d != tr {
				t.Errorf("%v seed %d: dispatched %d, dispatch trace events %d", mode, seed, d, tr)
			}
		}
	}
}

// TestMetricsInvariantsWeakOrder repeats the deferral accounting under
// the Section-3.6 weak order, where rollbacks can additionally come
// from aborted commit-order dependencies.
func TestMetricsInvariantsWeakOrder(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		_, reg := instrumentedRun(t, seed, scheduler.PREDCascade, true)
		deferred := reg.Counter(metrics.CommitsDeferred)
		resolved := reg.Counter(metrics.DeferredCommitted2PC) + reg.Counter(metrics.DeferredRolledBack)
		if deferred != resolved {
			t.Errorf("weak seed %d: %d deferred commits but %d resolutions", seed, deferred, resolved)
		}
	}
}

// TestRecoverWithMetrics crash-injects a run and checks the recovery
// registry: the group abort is recorded, and its compensation and
// forward-invocation counters match the recovery report.
func TestRecoverWithMetrics(t *testing.T) {
	p := workload.DefaultProfile(3)
	p.PermFailureProb = 0.1
	w := workload.MustGenerate(p)
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade, CrashAfterEvents: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunJobs(w.Jobs); err == nil {
		t.Skip("run finished before the injected crash point")
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	reg := metrics.New()
	report, err := scheduler.RecoverWithMetrics(w.Fed, eng.Log(), defs, reg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(report.BackwardRecovered) + len(report.ForwardRecovered); n > 0 {
		if got := reg.Counter(metrics.GroupAborts); got != 1 {
			t.Errorf("group aborts = %d, want 1", got)
		}
	}
	if got := reg.Counter(metrics.RecoveryCompensations); got != int64(report.Compensations) {
		t.Errorf("recovery compensations counter %d, report %d", got, report.Compensations)
	}
	if got := reg.Counter(metrics.RecoveryForwardInvokes); got != int64(report.ForwardInvocations) {
		t.Errorf("recovery forward counter %d, report %d", got, report.ForwardInvocations)
	}
	if got, want := reg.Counter(metrics.BackwardRecoveries), int64(len(report.BackwardRecovered)); got != want {
		t.Errorf("backward recoveries counter %d, report %d", got, want)
	}
	if len(w.Fed.InDoubt()) != 0 {
		t.Error("in-doubt transactions remain after recovery")
	}
}
