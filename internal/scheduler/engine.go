package scheduler

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// ErrCrashed is returned by Run when the configured crash point was
// reached; federation and log state survive for Recover.
var ErrCrashed = errors.New("scheduler: injected crash")

// procState is the engine-level state of a process.
type procState int

const (
	psRunning procState = iota
	psAborting
	psDone
)

// preparedTx remembers an in-doubt local transaction per activity.
type preparedTx struct {
	sub     *subsystem.Subsystem
	tx      subsystem.TxID
	service string
	seq     int64 // global completion sequence of the prepare
	weak    bool  // invoked under the weak order
}

// engEvent is one effective event in the engine's history, used both for
// conflict-graph maintenance and to build the final observed schedule.
type engEvent struct {
	seq     int64
	proc    process.ID
	local   int
	service string
	kind    activity.Kind
	typ     schedule.EventType
	inverse bool
	// tentative marks prepared invocations whose commit is deferred;
	// they are erased if rolled back.
	tentative bool
	erased    bool
	// compensated marks base invocations undone later (they stop
	// contributing conflict-graph edges).
	compensated bool
	committed   bool // Terminate events: regular C_i
	group       []process.ID
}

// procRT is the runtime of one process.
type procRT struct {
	id      process.ID
	def     *process.Process
	inst    *process.Instance
	state   procState
	arrival int

	arrivalTime     int64
	recovery        []process.Step // queued recovery steps (sequential)
	recoveryBusy    bool           // a recovery step is in flight
	recoveryBusySvc string
	abortPending    bool       // abort requested, waiting for in-flight work
	restartable     bool       // restart after the pending abort completes
	origin          process.ID // original id across restarts
	restarts        int
	prepared        map[int]preparedTx
	running         map[int]string // in-flight invocations: local -> service
	attempts        map[int]int
	start, end      int64
	committedSeq    map[int]int64 // local -> completion seq of its commit/prepare
	// blockedSince is the clock at which the finished process first
	// found its deferred 2PC commit blocked by an active conflicting
	// predecessor (-1 while not blocked); feeds HistProcBlocked.
	blockedSince int64
}

// completion is a scheduled future event in virtual time.
type completion struct {
	at, seq int64
	proc    process.ID
	isStep  bool
	step    process.Step
	local   int
	service string
	kind    activity.Kind
	res     *subsystem.Result
	failed  bool // the local transaction aborted
	weak    bool // invoked under the weak order (Section 3.6)
	tries   int  // commit-order wait retries (safety bound)
}

type completionHeap []*completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(*completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine executes a set of processes against a federation of
// transactional subsystems under a scheduling policy.
type Engine struct {
	cfg   Config
	fed   *subsystem.Federation
	table *conflict.Table
	log   wal.Log
	coord *twopc.Coordinator

	clock   int64
	seq     int64
	queue   completionHeap
	procs   []*procRT
	byID    map[process.ID]*procRT
	pending []*procRT // not yet admitted (Serial/Conservative gating)

	events []*engEvent
	// edges is the process conflict graph with reference counts; it
	// includes edges to/from terminated processes (history matters for
	// serializability).
	edges map[[2]process.ID]int

	metrics     Metrics
	reg         *metrics.Registry // observability registry (nil = no-op)
	completions int
	crashed     bool
	outcomes    map[process.ID]*Outcome
	origProcs   []*process.Process
	allProcs    []*process.Process // including restarts

	// forced-graph cache, invalidated whenever effective events, edges,
	// recovery queues or process states change.
	version     int64
	fctx        *forcedCtx
	fctxVersion int64
	// confCache memoizes conflict-table lookups (the table is fixed for
	// the run).
	confCache map[[2]string]bool
}

// bump invalidates the forced-graph cache.
func (e *Engine) bump() { e.version++ }

// conflicts is a memoized front end to the conflict table; the table is
// immutable during a run and the check sits on every hot path.
func (e *Engine) conflicts(a, b string) bool {
	if a > b {
		a, b = b, a
	}
	k := [2]string{a, b}
	if v, ok := e.confCache[k]; ok {
		return v
	}
	v := e.table.Conflicts(a, b)
	e.confCache[k] = v
	return v
}

// forced returns the current round's forced-graph context.
func (e *Engine) forced() *forcedCtx {
	if e.fctx == nil || e.fctxVersion != e.version {
		e.fctx = e.newForcedCtx()
		e.fctxVersion = e.version
	}
	return e.fctx
}

// New creates an engine over the federation. The conflict table is
// derived from the subsystems' declared read/write sets.
func New(fed *subsystem.Federation, cfg Config) (*Engine, error) {
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		fed:       fed,
		table:     table,
		log:       cfg.Log,
		coord:     twopc.New(cfg.Log),
		reg:       cfg.Metrics,
		byID:      make(map[process.ID]*procRT),
		edges:     make(map[[2]process.ID]int),
		outcomes:  make(map[process.ID]*Outcome),
		confCache: make(map[[2]string]bool),
	}
	if e.reg != nil {
		// Wire the registry through the whole stack: the coordinator
		// (prepared-set sizes), every subsystem (invocation counters,
		// in-doubt sizes) and the WAL (append/fsync totals).
		e.coord.Metrics = e.reg
		fed.SetMetrics(e.reg)
		if il, ok := e.log.(wal.Instrumented); ok {
			il.SetMetrics(e.reg)
		}
	}
	return e, nil
}

// Table returns the conflict table the engine scheduled under.
func (e *Engine) Table() *conflict.Table { return e.table }

// Log returns the engine's write-ahead log (for recovery).
func (e *Engine) Log() wal.Log { return e.log }

// Result is the outcome of a run.
type Result struct {
	// Schedule is the observed process schedule, reconstructed from the
	// finalized events; it can be checked with PRED(), Serializable()
	// and ProcessRecoverable().
	Schedule *schedule.Schedule
	Metrics  Metrics
	Outcomes map[process.ID]*Outcome
	Crashed  bool
}

// Job is a process with an arrival time in virtual ticks.
type Job struct {
	Proc    *process.Process
	Arrival int64
}

// Run executes the processes to completion (or crash) and returns the
// observed schedule plus metrics; all processes arrive at time zero.
func (e *Engine) Run(procs []*process.Process) (*Result, error) {
	jobs := make([]Job, len(procs))
	for i, p := range procs {
		jobs[i] = Job{Proc: p}
	}
	return e.RunJobs(jobs)
}

// RunJobs executes the processes to completion (or crash), admitting
// each when the virtual clock reaches its arrival time. Process
// definitions must have guaranteed termination; services they reference
// must exist in the federation.
func (e *Engine) RunJobs(jobs []Job) (*Result, error) {
	procs := make([]*process.Process, len(jobs))
	for i, j := range jobs {
		procs[i] = j.Proc
	}
	for _, p := range procs {
		if err := process.ValidateGuaranteedTermination(p); err != nil {
			return nil, fmt.Errorf("scheduler: process %s lacks guaranteed termination: %w", p.ID, err)
		}
		for _, a := range p.Activities() {
			spec, ok := e.fed.Spec(a.Service)
			if !ok {
				return nil, fmt.Errorf("scheduler: process %s uses unknown service %q", p.ID, a.Service)
			}
			if spec.Kind != a.Kind {
				return nil, fmt.Errorf("scheduler: process %s activity %d declares %v for service %q of kind %v",
					p.ID, a.Local, a.Kind, a.Service, spec.Kind)
			}
			if a.Kind == activity.Compensatable && spec.Compensation != a.Compensation {
				return nil, fmt.Errorf("scheduler: process %s activity %d compensation %q, subsystem provides %q",
					p.ID, a.Local, a.Compensation, spec.Compensation)
			}
		}
	}
	e.origProcs = procs
	for i, j := range jobs {
		rt := e.newRT(j.Proc, i, j.Proc.ID)
		rt.arrivalTime = j.Arrival
		e.pending = append(e.pending, rt)
	}
	e.admit()

	stalls := 0
	for {
		if e.crashed {
			break
		}
		progressed := e.dispatchAll()
		if e.admit() {
			progressed = true
		}
		if len(e.queue) == 0 {
			if progressed {
				continue
			}
			if e.allDone() {
				break
			}
			// Idle until the next arrival, if any.
			if next, ok := e.nextArrival(); ok && next > e.clock {
				e.clock = next
				continue
			}
			stalls++
			if stalls > e.cfg.MaxStalls {
				return nil, fmt.Errorf("scheduler: stalled with active processes and no progress (mode %v)\n%s", e.cfg.Mode, e.stallDump())
			}
			if !e.resolveStall() {
				return nil, fmt.Errorf("scheduler: unresolvable stall (mode %v)\n%s", e.cfg.Mode, e.stallDump())
			}
			continue
		}
		// Admit arrivals that precede the next completion.
		if next, ok := e.nextArrival(); ok && next <= e.queue[0].at {
			if next > e.clock {
				e.clock = next
			}
			e.admit()
			continue
		}
		ev := heap.Pop(&e.queue).(*completion)
		if ev.at > e.clock {
			e.clock = ev.at
		}
		if err := e.handleCompletion(ev); err != nil {
			return nil, err
		}
		e.completions++
		if e.cfg.CrashAfterEvents > 0 && e.completions >= e.cfg.CrashAfterEvents {
			e.crashed = true
		}
	}

	e.metrics.Makespan = e.clock
	res := &Result{
		Schedule: e.buildSchedule(),
		Metrics:  e.metrics,
		Outcomes: e.outcomes,
		Crashed:  e.crashed,
	}
	if e.crashed {
		return res, ErrCrashed
	}
	return res, nil
}

func (e *Engine) newRT(p *process.Process, arrival int, origin process.ID) *procRT {
	rt := &procRT{
		id:           p.ID,
		def:          p,
		inst:         process.NewInstance(p),
		state:        psRunning,
		arrival:      arrival,
		origin:       origin,
		prepared:     make(map[int]preparedTx),
		running:      make(map[int]string),
		attempts:     make(map[int]int),
		committedSeq: make(map[int]int64),
		start:        e.clock,
		blockedSince: -1,
	}
	e.allProcs = append(e.allProcs, p)
	e.outcomes[p.ID] = &Outcome{Start: e.clock}
	return rt
}

// admit moves pending processes into the running set per the policy and
// reports whether any process was admitted.
func (e *Engine) admit() bool {
	var keep []*procRT
	admitted := false
	for _, rt := range e.pending {
		if e.mayStart(rt) {
			e.procs = append(e.procs, rt)
			e.byID[rt.id] = rt
			rt.start = e.clock
			e.outcomes[rt.id].Start = e.clock
			e.log.Append(wal.Record{Type: wal.RecStart, Proc: string(rt.id)})
			e.reg.Inc(metrics.ProcsAdmitted)
			e.reg.Trace(metrics.TAdmit, e.clock, string(rt.id), 0, "", "")
			admitted = true
		} else {
			keep = append(keep, rt)
		}
	}
	e.pending = keep
	if admitted {
		e.bump()
	}
	return admitted
}

// nextArrival returns the earliest future arrival among pending jobs.
func (e *Engine) nextArrival() (int64, bool) {
	found := false
	var min int64
	for _, rt := range e.pending {
		if rt.arrivalTime > e.clock && (!found || rt.arrivalTime < min) {
			min = rt.arrivalTime
			found = true
		}
	}
	return min, found
}

// mayStart implements the admission policies.
func (e *Engine) mayStart(rt *procRT) bool {
	if rt.arrivalTime > e.clock {
		return false
	}
	switch e.cfg.Mode {
	case Serial:
		for _, o := range e.procs {
			if o.state != psDone {
				return false
			}
		}
		return true
	case Conservative:
		// Admit only when the process's full service footprint does not
		// conflict with that of any running process.
		mine := e.footprint(rt.def)
		for _, o := range e.procs {
			if o.state == psDone {
				continue
			}
			for _, s1 := range mine {
				for _, s2 := range e.footprint(o.def) {
					if e.table.Conflicts(s1, s2) {
						return false
					}
				}
			}
		}
		return true
	default:
		return true
	}
}

func (e *Engine) footprint(p *process.Process) []string {
	var out []string
	for _, a := range p.Activities() {
		out = append(out, a.Service)
		if a.Compensation != "" {
			out = append(out, a.Compensation)
		}
	}
	return out
}

func (e *Engine) allDone() bool {
	if len(e.pending) > 0 {
		return false
	}
	for _, rt := range e.procs {
		if rt.state != psDone {
			return false
		}
	}
	return true
}

// cost returns the virtual duration of a service invocation.
func (e *Engine) cost(service string) int64 {
	spec, ok := e.fed.Spec(service)
	if !ok || spec.Cost < 1 {
		return 1
	}
	return int64(spec.Cost)
}

// dispatchAll attempts to make progress on every process; returns true
// when at least one new invocation was issued or terminal transition
// occurred.
func (e *Engine) dispatchAll() bool {
	progressed := false
	for _, rt := range e.procs {
		if rt.state == psDone {
			continue
		}
		if e.dispatchProc(rt) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) dispatchProc(rt *procRT) bool {
	// Recovery steps run strictly sequentially and drain before a
	// pending abort is honoured (the instance's alternative bookkeeping
	// must settle before the completion is computed).
	if len(rt.recovery) > 0 {
		if rt.recoveryBusy {
			return false
		}
		return e.dispatchRecoveryStep(rt)
	}
	// Abort requested while work was in flight: start it when drained.
	if rt.abortPending && len(rt.running) == 0 && !rt.recoveryBusy && rt.state != psAborting {
		if err := e.beginAbort(rt); err == nil {
			return true
		}
		return false
	}
	if rt.state == psAborting {
		if rt.recoveryBusy || len(rt.running) > 0 {
			return false
		}
		e.finishAbort(rt)
		return true
	}
	// Regular execution: finish or dispatch frontier activities.
	if rt.inst.Done() && len(rt.running) == 0 {
		return e.tryFinish(rt)
	}
	progressed := false
	for _, local := range rt.inst.Frontier() {
		if _, inFlight := rt.running[local]; inFlight {
			continue
		}
		a := rt.def.Activity(local)
		// Intra-process: all predecessors must be fully committed (a
		// prepared non-compensatable defers its successors, so that a
		// rolled-back prepared transaction never has committed
		// successors).
		if !e.predsCommitted(rt, local) {
			continue
		}
		if ok, why := e.mayDispatch(rt, a); !ok {
			e.metrics.PolicyWaits++
			e.reg.Inc(metrics.InvokePolicyBlocked)
			e.reg.Trace(metrics.TPolicyWait, e.clock, string(rt.id), local, a.Service, why)
			continue
		}
		if e.invoke(rt, local, a.Service, a.Kind, false, process.Step{}) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) predsCommitted(rt *procRT, local int) bool {
	for _, h := range rt.def.Preds(local) {
		if rt.inst.Status(h) != process.Committed {
			return false
		}
	}
	return true
}

// invoke issues a subsystem invocation and schedules its completion.
// In weak-order mode, regular activity invocations never block on
// subsystem locks: conflicting in-doubt transactions become commit-order
// dependencies instead (Section 3.6). Recovery steps always use the
// strong order.
func (e *Engine) invoke(rt *procRT, local int, service string, kind activity.Kind, isStep bool, step process.Step) bool {
	var res *subsystem.Result
	var err error
	weak := e.cfg.WeakOrder && !isStep &&
		(e.cfg.Mode == PRED || e.cfg.Mode == PREDCascade)
	if weak {
		sub, ok := e.fed.Owner(service)
		if !ok {
			panic(fmt.Sprintf("scheduler: unknown service %q", service))
		}
		var deps []subsystem.TxID
		res, deps, err = sub.InvokeWeak(string(rt.origin), service)
		// A commit-order dependency is only safe on a transaction that
		// resolves at its own completion — a compensatable activity's
		// local transaction. Non-compensatable ones may have their 2PC
		// commit deferred until *our* process terminates (Lemma 1),
		// which would deadlock the commit order. On such a dependency,
		// roll back and wait like a strong lock conflict.
		if err == nil {
			for _, d := range deps {
				svc, ok := sub.TxService(d)
				risky := !ok
				if ok {
					if spec, found := e.fed.Spec(svc); found {
						risky = spec.Kind != activity.Compensatable && spec.Kind != activity.Compensation
					}
				}
				if risky {
					if rbErr := sub.AbortPrepared(res.Tx); rbErr != nil {
						panic(fmt.Sprintf("scheduler: weak fallback rollback: %v", rbErr))
					}
					e.metrics.Invocations++
					e.metrics.LockWaits++
					e.reg.Inc(metrics.InvokeLockBlocked)
					e.reg.Trace(metrics.TLockWait, e.clock, string(rt.id), local, service, "weak-order dependency on non-compensatable")
					return false
				}
			}
		}
		e.metrics.WeakDeps += int64(len(deps))
		e.reg.Add(metrics.WeakDeps, int64(len(deps)))
	} else {
		res, err = e.fed.Invoke(string(rt.origin), service, subsystem.Prepare)
	}
	e.metrics.Invocations++
	switch {
	case errors.Is(err, subsystem.ErrLocked):
		e.metrics.LockWaits++
		e.reg.Inc(metrics.InvokeLockBlocked)
		e.reg.Trace(metrics.TLockWait, e.clock, string(rt.id), local, service, "")
		return false
	case errors.Is(err, subsystem.ErrAborted):
		res = nil
	case err != nil:
		panic(fmt.Sprintf("scheduler: invoke %s/%s: %v", rt.id, service, err))
	}
	e.seq++
	c := &completion{
		at: e.clock + e.cost(service), seq: e.seq,
		proc: rt.id, isStep: isStep, step: step,
		local: local, service: service, kind: kind,
		res: res, failed: res == nil, weak: weak,
	}
	if isStep {
		rt.recoveryBusy = true
		rt.recoveryBusySvc = service
	} else {
		rt.running[local] = service
	}
	e.bump()
	e.log.Append(wal.Record{
		Type: wal.RecDispatch, Proc: string(rt.id), Local: local, Service: service,
	})
	e.reg.Inc(metrics.InvokeDispatched)
	e.reg.Trace(metrics.TDispatch, e.clock, string(rt.id), local, service, "")
	heap.Push(&e.queue, c)
	return true
}

// handleCompletion processes one finished invocation.
func (e *Engine) handleCompletion(c *completion) error {
	rt := e.byID[c.proc]
	if rt == nil {
		return fmt.Errorf("scheduler: completion for unknown process %s", c.proc)
	}
	if c.isStep {
		return e.handleStepCompletion(rt, c)
	}
	delete(rt.running, c.local)
	e.bump()
	if c.tries == 0 {
		// First completion of this invocation (not a commit-order wait
		// retry): record the per-service latency.
		e.reg.ObserveService(c.service, e.cost(c.service))
	}

	// Orphaned completion: while the invocation was in flight, its
	// branch was abandoned or the process began aborting (a parallel
	// sibling failed). The outcome is discarded; a successful local
	// transaction is rolled back — atomicity guarantees no effects.
	if st := rt.inst.Status(c.local); st != process.Pending {
		if !c.failed && c.res != nil {
			sub, _ := e.fed.Owner(c.service)
			if err := sub.AbortPrepared(c.res.Tx); err == nil {
				e.metrics.Rollbacks++
				e.reg.Inc(metrics.RollbacksOrphaned)
				e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), c.local, c.service, "orphaned completion")
				e.log.Append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: c.local,
					Service: c.service, Subsystem: sub.Name(), Tx: int64(c.res.Tx), Commit: false,
				})
			}
		}
		return nil
	}

	if c.failed {
		if c.kind.GuaranteedToCommit() {
			// Transient failure of a retriable activity: re-invoke.
			e.metrics.Retries++
			e.reg.Inc(metrics.RetriesTransient)
			e.reg.Trace(metrics.TRetry, e.clock, string(rt.id), c.local, c.service, "")
			rt.attempts[c.local]++
			e.log.Append(wal.Record{Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service, Outcome: "aborted"})
			return nil
		}
		return e.handlePermanentFailure(rt, c)
	}

	// Success: the local transaction is prepared at the subsystem.
	e.log.Append(wal.Record{
		Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service,
		Subsystem: e.subsystemOf(c.service), Tx: int64(c.res.Tx), Outcome: "prepared",
	})
	if e.commitImmediately(rt, c.kind) {
		sub, _ := e.fed.Owner(c.service)
		if c.weak {
			// Commit-order serializability (Section 3.6): the commit
			// may have to wait for weakly preceding transactions, or
			// the invocation may have to be redone when one of them
			// aborted.
			switch err := sub.WeakCommittable(c.res.Tx); {
			case errors.Is(err, subsystem.ErrOrder):
				c.tries++
				if c.tries > 100000 {
					return fmt.Errorf("scheduler: weak commit of %s/%s starved (commit-order wait)", rt.id, c.service)
				}
				e.metrics.WeakOrderWaits++
				e.reg.Inc(metrics.WeakOrderWaits)
				e.reg.Trace(metrics.TWeakWait, e.clock, string(rt.id), c.local, c.service, "")
				e.seq++
				c.at = e.clock + 1
				c.seq = e.seq
				rt.running[c.local] = c.service // still occupies its slot
				heap.Push(&e.queue, c)
				return nil
			case errors.Is(err, subsystem.ErrDependencyAborted):
				e.metrics.WeakRestarts++
				e.reg.Inc(metrics.WeakRestarts)
				e.reg.Trace(metrics.TWeakRestart, e.clock, string(rt.id), c.local, c.service, "")
				if err := sub.AbortPrepared(c.res.Tx); err != nil {
					return fmt.Errorf("scheduler: weak rollback %s/%s: %w", rt.id, c.service, err)
				}
				// The activity stays pending and is simply re-invoked;
				// this is not a failure of the process (Section 3.6).
				return nil
			case err != nil:
				return fmt.Errorf("scheduler: weak commit %s/%s: %w", rt.id, c.service, err)
			}
		}
		if err := sub.CommitPrepared(c.res.Tx); err != nil {
			return fmt.Errorf("scheduler: commit %s/%s: %w", rt.id, c.service, err)
		}
		e.log.Append(wal.Record{
			Type: wal.RecResolved, Proc: string(rt.id), Local: c.local,
			Service: c.service, Subsystem: sub.Name(), Tx: int64(c.res.Tx), Commit: true,
		})
		if err := rt.inst.MarkCommitted(c.local); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
		e.appendEvent(&engEvent{
			proc: rt.id, local: c.local, service: c.service, kind: c.kind, typ: schedule.Invoke,
		}, c.seq)
		rt.committedSeq[c.local] = c.seq
		e.reg.Inc(metrics.CommitsImmediate)
		e.reg.Trace(metrics.TCommit, e.clock, string(rt.id), c.local, c.service, "")
	} else {
		// Deferred commit (Lemma 1): hold the prepared transaction.
		e.metrics.Deferrals++
		e.reg.Inc(metrics.CommitsDeferred)
		if e.reg != nil {
			e.reg.Trace(metrics.TDeferCommit, e.clock, string(rt.id), c.local, c.service, e.firstActivePred(rt))
		}
		if err := rt.inst.MarkPrepared(c.local); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
		sub, _ := e.fed.Owner(c.service)
		rt.prepared[c.local] = preparedTx{sub: sub, tx: c.res.Tx, service: c.service, seq: c.seq, weak: c.weak}
		ev := &engEvent{
			proc: rt.id, local: c.local, service: c.service, kind: c.kind,
			typ: schedule.Invoke, tentative: true,
		}
		e.appendEvent(ev, c.seq)
		rt.committedSeq[c.local] = c.seq
	}
	return nil
}

// commitImmediately decides whether an activity's local transaction
// commits right at completion. Compensatable activities always commit
// (they are undoable); non-compensatable ones commit immediately only
// when the mode ignores recovery (CCOnly) or never interleaves
// (Serial/Conservative), or when the process has no active conflicting
// predecessor (Lemma 1's deferral condition is already satisfied).
func (e *Engine) commitImmediately(rt *procRT, kind activity.Kind) bool {
	if kind == activity.Compensatable {
		return true
	}
	switch e.cfg.Mode {
	case CCOnly, Serial, Conservative:
		return true
	default:
		return !e.hasActiveConflictPred(rt)
	}
}

// hasActiveConflictPred reports whether any non-terminated process has
// an edge into rt in the conflict graph.
func (e *Engine) hasActiveConflictPred(rt *procRT) bool {
	for k, n := range e.edges {
		if n <= 0 || k[1] != rt.id {
			continue
		}
		if q := e.byID[k[0]]; q != nil && q.state != psDone {
			return true
		}
	}
	return false
}

// firstActivePred names one active conflicting predecessor of rt — the
// process a deferred commit is waiting on (trace detail for the
// defer-commit decision). Which one is named is arbitrary when several
// exist.
func (e *Engine) firstActivePred(rt *procRT) string {
	for k, n := range e.edges {
		if n <= 0 || k[1] != rt.id {
			continue
		}
		if q := e.byID[k[0]]; q != nil && q.state != psDone {
			return string(k[0])
		}
	}
	return ""
}

// subsystemOf names the owning subsystem of a service.
func (e *Engine) subsystemOf(service string) string {
	if sub, ok := e.fed.Owner(service); ok {
		return sub.Name()
	}
	return ""
}

// appendEvent records an effective event and adds its conflict-graph
// edges against all earlier effective events.
func (e *Engine) appendEvent(ev *engEvent, seq int64) {
	ev.seq = seq
	// Inverse (compensating) events never contribute conflict-graph
	// edges: the pair ⟨a a⁻¹⟩ is effect-free, and the Lemma-2 dispatch
	// guard already verified no conflicting later work of another
	// process exists before the compensation ran.
	if ev.typ == schedule.Invoke && !ev.inverse {
		for _, old := range e.events {
			if old.erased || old.compensated || old.inverse || old.typ != schedule.Invoke || old.proc == ev.proc {
				continue
			}
			if e.conflicts(old.service, ev.service) {
				e.addEdge(old.proc, ev.proc)
			}
		}
	}
	e.events = append(e.events, ev)
	e.bump()
}

func (e *Engine) addEdge(a, b process.ID) {
	if a == b {
		return
	}
	e.edges[[2]process.ID{a, b}]++
}

// removeEventEdges decrements the edges an event contributed when it is
// erased (rollback) or compensated.
func (e *Engine) removeEventEdges(ev *engEvent) {
	for _, old := range e.events {
		if old == ev || old.erased || old.compensated || old.inverse || old.typ != schedule.Invoke {
			continue
		}
		if old.proc == ev.proc {
			continue
		}
		if e.conflicts(old.service, ev.service) {
			var key [2]process.ID
			if old.seq < ev.seq {
				key = [2]process.ID{old.proc, ev.proc}
			} else {
				key = [2]process.ID{ev.proc, old.proc}
			}
			if e.edges[key] > 0 {
				e.edges[key]--
			}
		}
	}
	e.bump()
}

// wouldCycle reports whether adding edges from the given predecessors to
// rt closes a cycle in the conflict graph.
func (e *Engine) wouldCycle(preds map[process.ID]bool, to process.ID) bool {
	// DFS from `to` over positive edges; if we reach any pred, the new
	// edge pred->to closes a cycle.
	stack := []process.ID{to}
	seen := map[process.ID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n != to && preds[n] {
			return true
		}
		for k, cnt := range e.edges {
			if cnt > 0 && k[0] == n {
				stack = append(stack, k[1])
			}
		}
	}
	return false
}

// conflictPreds returns, for a prospective activity of rt, the set of
// processes with an earlier effective conflicting event.
func (e *Engine) conflictPreds(rt *procRT, service string) map[process.ID]bool {
	preds := make(map[process.ID]bool)
	for svc, owners := range e.forced().bySvc {
		if !e.conflicts(svc, service) {
			continue
		}
		for p := range owners {
			if p != rt.id {
				preds[p] = true
			}
		}
	}
	return preds
}

// mayDispatch implements the per-activity scheduling rules.
func (e *Engine) mayDispatch(rt *procRT, a *process.Activity) (bool, string) {
	switch e.cfg.Mode {
	case Serial, Conservative:
		return true, "" // admission already serialized conflicts
	}
	preds := e.conflictPreds(rt, a.Service)
	if e.cfg.Mode == CCOnly {
		if len(preds) == 0 {
			return true, ""
		}
		if e.wouldCycle(preds, rt.id) {
			return false, "serializability: edge would close a cycle"
		}
		return true, ""
	}
	// PRED modes: dependencies on active processes are restricted.
	for q := range preds {
		qrt := e.byID[q]
		if qrt == nil || qrt.state == psDone {
			continue
		}
		if e.safeQuasiCommit(qrt, a.Service) {
			continue
		}
		if e.cfg.Mode == PREDCascade && a.Kind == activity.Compensatable && qrt.state == psRunning &&
			qrt.arrival <= rt.arrival && !e.forwardConflict(qrt, a.Service) {
			// Figure-7 pattern: a compensatable activity may depend on
			// an active process — if that process unwinds, the
			// dependent is cascade-aborted first (Lemma 2 order). Two
			// guards keep this from wedging: none of the predecessor's
			// still-uncommitted services may conflict (a conflicting
			// forward-recovery activity could not be cancelled, and a
			// conflicting regular activity would later be blocked by
			// *our* new survivor, wedging the predecessor behind its
			// own follower); and dependencies may only point from older
			// to younger processes (age priority), keeping the
			// wait-for relation among deferred commits acyclic.
			continue
		}
		return false, fmt.Sprintf("recovery: depends on active process %s (Lemma 1)", q)
	}
	// The dispatch must keep the forced ordering graph of the completed
	// current schedule acyclic (prefix-reducibility, maintained
	// inductively).
	fc := e.forced()
	if !fc.acyclicWith(fc.newEdges(rt.id, a.Service, false)) {
		return false, "completed-schedule ordering would become cyclic"
	}
	if e.cfg.BlockPivots && a.Kind.NonCompensatable() && e.hasActiveConflictPred(rt) {
		return false, "pivot blocked until predecessors terminate (ablation mode)"
	}
	return true, ""
}

// safeQuasiCommit reports whether q can no longer produce a recovery
// activity conflicting with service: q is forward-recoverable and none
// of its potential recovery services conflicts (Example 10).
func (e *Engine) safeQuasiCommit(q *procRT, service string) bool {
	if q.state != psRunning || q.inst.Mode() != process.FREC {
		return false
	}
	for svc := range q.inst.PotentialRecoveryServices() {
		if e.table.Conflicts(svc, service) {
			return false
		}
	}
	return true
}

// forwardConflict reports whether q's potential forward recovery
// services conflict with the given service.
func (e *Engine) forwardConflict(q *procRT, service string) bool {
	for svc := range q.inst.PotentialForwardServices() {
		if e.conflicts(svc, service) {
			return true
		}
	}
	return false
}

// futureConflict reports whether any service q may still invoke (on any
// path, any kind) conflicts with the given service.
func (e *Engine) futureConflict(q *procRT, service string) bool {
	for svc := range q.inst.UncommittedServices() {
		if e.conflicts(svc, service) {
			return true
		}
	}
	return false
}

// lemma1ClearForward gates a forward-recovery invocation (StepInvoke):
// it must not conflict-follow an effective activity of an active
// process that could still need a conflicting recovery of its own
// (the "arbitrary conflicts can be introduced to S̃" hazard of
// Section 3.5). Aborting processes are waited for only through their
// queued compensations (lemma3Clear); their remaining forward paths
// merely order against ours.
func (e *Engine) lemma1ClearForward(rt *procRT, st process.Step) bool {
	for q := range e.conflictPreds(rt, st.Service) {
		qrt := e.byID[q]
		if qrt == nil || qrt.state == psDone || qrt.state == psAborting {
			continue
		}
		if !e.safeQuasiCommit(qrt, st.Service) {
			return false
		}
	}
	return true
}

// handlePermanentFailure reacts to the definitive failure of a
// compensatable or pivot activity (Definition 4).
func (e *Engine) handlePermanentFailure(rt *procRT, c *completion) error {
	e.log.Append(wal.Record{Type: wal.RecFailed, Proc: string(rt.id), Local: c.local, Service: c.service})
	e.reg.Trace(metrics.TFail, e.clock, string(rt.id), c.local, c.service, "")
	e.seq++
	e.appendEvent(&engEvent{
		proc: rt.id, local: c.local, service: c.service, kind: c.kind, typ: schedule.FailedInvoke,
	}, e.seq)
	plan, err := rt.inst.MarkFailed(c.local)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	if rt.abortPending {
		// An abort is already queued; its completion supersedes the
		// failure's local plan.
		return nil
	}
	if plan.Abort {
		rt.restartable = false
		rt.state = psAborting
		rt.recovery = plan.Steps
		e.log.Append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		e.reg.Inc(metrics.BackwardRecoveries)
		e.reg.Trace(metrics.TBackward, e.clock, string(rt.id), c.local, c.service, "")
		e.seq++
		e.appendEvent(&engEvent{proc: rt.id, typ: schedule.AbortBegin}, e.seq)
		e.cascadeDependents(rt)
		return nil
	}
	rt.recovery = plan.Steps
	e.reg.Inc(metrics.ForwardRecoveries)
	e.reg.Trace(metrics.TForward, e.clock, string(rt.id), c.local, c.service, "")
	return nil
}

// beginAbort starts the abort A_i of a process, computing its completion
// C(P_i) and queueing the steps.
func (e *Engine) beginAbort(rt *procRT) error {
	steps, err := rt.inst.Abort()
	if err != nil {
		return fmt.Errorf("scheduler: abort %s: %w", rt.id, err)
	}
	rt.abortPending = false
	rt.state = psAborting
	rt.recovery = steps
	e.log.Append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
	e.reg.Inc(metrics.BackwardRecoveries)
	e.reg.Trace(metrics.TBackward, e.clock, string(rt.id), 0, "", "")
	e.seq++
	e.appendEvent(&engEvent{proc: rt.id, typ: schedule.AbortBegin}, e.seq)
	e.cascadeDependents(rt)
	return nil
}

// cascadeDependents aborts active processes that depend on rt through
// conflict edges when rt's completion will compensate conflicting work
// (cascading aborts, only possible in PREDCascade mode). The Lemma-2
// dispatch guard makes the dependents' compensations execute before
// rt's own.
func (e *Engine) cascadeDependents(rt *procRT) {
	if e.cfg.Mode != PREDCascade {
		return
	}
	// Which bases will rt compensate, and from which position on?
	type comp struct {
		service string
		baseSeq int64
	}
	comps := make([]comp, 0, len(rt.recovery))
	for _, st := range rt.recovery {
		if st.Kind == process.StepCompensate {
			comps = append(comps, comp{st.Service, rt.committedSeq[st.Local]})
		}
	}
	if len(comps) == 0 {
		return
	}
	for k, n := range e.edges {
		if n <= 0 || k[0] != rt.id {
			continue
		}
		q := e.byID[k[1]]
		if q == nil || q.state != psRunning || q.abortPending {
			continue
		}
		// q must cascade only if it holds effective (uncompensated)
		// work that conflicts with a compensation and was executed
		// *after* the compensated base — only then would the base's
		// compensation pair be blocked (Lemma 2 demands q's conflicting
		// work unwinds first).
		depends := false
		for _, ev := range e.events {
			if ev.proc != q.id || ev.erased || ev.compensated || ev.inverse || ev.typ != schedule.Invoke {
				continue
			}
			for _, c := range comps {
				if ev.seq > c.baseSeq && e.conflicts(ev.service, c.service) {
					depends = true
					break
				}
			}
			if depends {
				break
			}
		}
		if !depends {
			continue
		}
		e.metrics.Cascades++
		e.reg.Inc(metrics.CascadeAborts)
		e.reg.Trace(metrics.TCascade, e.clock, string(q.id), 0, "", string(rt.id))
		q.abortPending = true
		q.restartable = true
	}
}

// dispatchRecoveryStep issues the next queued recovery step, honouring
// the cross-process ordering constraints of Lemmas 2 and 3.
func (e *Engine) dispatchRecoveryStep(rt *procRT) bool {
	st := rt.recovery[0]
	switch st.Kind {
	case process.StepAbortPrepared:
		// Resolve immediately (no subsystem work to simulate).
		rt.recovery = rt.recovery[1:]
		ptx, ok := rt.prepared[st.Local]
		if ok {
			if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
				e.metrics.Rollbacks++
				e.reg.Inc(metrics.DeferredRolledBack)
				e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), st.Local, ptx.service, "abandoned branch")
				e.log.Append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: st.Local,
					Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
				})
			}
			delete(rt.prepared, st.Local)
		}
		// Erase the tentative event and its edges.
		for _, ev := range e.events {
			if ev.proc == rt.id && ev.local == st.Local && ev.tentative && !ev.erased {
				ev.erased = true
				e.removeEventEdges(ev)
			}
		}
		_ = rt.inst.ApplyStep(st)
		e.bump()
		return true
	case process.StepCompensate:
		if e.cfg.Mode != CCOnly && !e.lemma2Clear(rt, st) {
			e.metrics.PolicyWaits++
			return false
		}
		return e.invoke(rt, st.Local, st.Service, activity.Compensation, true, st)
	case process.StepInvoke:
		if e.cfg.Mode != CCOnly {
			if !e.lemma3Clear(rt, st) {
				e.debugDeny(rt, st, "lemma3")
				e.metrics.PolicyWaits++
				return false
			}
			if !e.lemma1ClearForward(rt, st) {
				e.debugDeny(rt, st, "lemma1fwd")
				e.metrics.PolicyWaits++
				return false
			}
			// Forced-order check: wait while the step's new edges close
			// a cycle that waiting can still break (some process on the
			// cycle path is active). A cycle whose other participants
			// already terminated cannot be avoided — the completion
			// step must run eventually, so it proceeds.
			fc := e.forced()
			if !fc.acyclicWithActive(fc.newEdges(rt.id, st.Service, true), func(id process.ID) bool {
				q := e.byID[id]
				return q != nil && q.state != psDone
			}) {
				e.debugDeny(rt, st, "forced-cycle")
				e.metrics.PolicyWaits++
				return false
			}
			// Defer to aborting processes whose queued conflicting
			// forward steps are forced before ours. When forced paths
			// exist in both directions (over-approximated soft edges),
			// the tie breaks by age then id, so exactly one side
			// proceeds and the mutual wait cannot deadlock.
			for _, o := range e.procs {
				if o == rt || o.state != psAborting {
					continue
				}
				for _, os := range o.recovery {
					if os.Kind != process.StepInvoke || !e.conflicts(os.Service, st.Service) {
						continue
					}
					if !fc.pathExists(o.id, rt.id) {
						continue
					}
					if fc.pathExists(rt.id, o.id) {
						// Mutual: older (or lower id) goes first.
						if rt.arrival < o.arrival || (rt.arrival == o.arrival && rt.id < o.id) {
							continue
						}
					}
					e.debugDeny(rt, st, fmt.Sprintf("defer-to-%s", o.id))
					e.metrics.PolicyWaits++
					return false
				}
			}
		}
		a := rt.def.Activity(st.Local)
		return e.invoke(rt, st.Local, st.Service, a.Kind, true, st)
	}
	return false
}

// lemma2Clear enforces the cross-process reverse order of compensations:
// the compensation of an activity executed at sequence T must wait while
// another active process still has effective conflicting work executed
// after T (that process compensates first — it is cascading).
func (e *Engine) lemma2Clear(rt *procRT, st process.Step) bool {
	baseSeq := rt.committedSeq[st.Local]
	for _, ev := range e.events {
		if ev.proc == rt.id || ev.erased || ev.compensated || ev.inverse || ev.typ != schedule.Invoke {
			continue
		}
		if ev.seq <= baseSeq {
			continue
		}
		q := e.byID[ev.proc]
		if q == nil || q.state == psDone {
			continue
		}
		if e.conflicts(ev.service, st.Service) {
			return false
		}
	}
	return true
}

// lemma3Clear defers a forward-recovery invocation while another active
// process has a conflicting compensation still queued: compensations
// precede conflicting retriable activities in the completion (Lemma 3).
func (e *Engine) lemma3Clear(rt *procRT, st process.Step) bool {
	for _, o := range e.procs {
		if o == rt || o.state == psDone {
			continue
		}
		for _, os := range o.recovery {
			if os.Kind == process.StepCompensate && e.conflicts(os.Service, st.Service) {
				return false
			}
		}
	}
	return true
}

// handleStepCompletion finishes a recovery-step invocation.
func (e *Engine) handleStepCompletion(rt *procRT, c *completion) error {
	rt.recoveryBusy = false
	rt.recoveryBusySvc = ""
	e.bump()
	e.reg.ObserveService(c.service, e.cost(c.service))
	if c.failed {
		// Compensations and forward-recovery activities are retriable;
		// transient failures are re-invoked.
		e.metrics.Retries++
		e.reg.Inc(metrics.RetriesTransient)
		e.reg.Trace(metrics.TRetry, e.clock, string(rt.id), c.local, c.service, "recovery step")
		return nil
	}
	// Commit the step's local transaction now.
	sub, _ := e.fed.Owner(c.service)
	if err := sub.CommitPrepared(c.res.Tx); err != nil {
		return fmt.Errorf("scheduler: commit step %s/%s: %w", rt.id, c.service, err)
	}
	if len(rt.recovery) > 0 && rt.recovery[0] == c.step {
		rt.recovery = rt.recovery[1:]
	}
	switch c.step.Kind {
	case process.StepCompensate:
		e.metrics.Compensations++
		e.reg.Inc(metrics.CompensationsIssued)
		e.reg.Trace(metrics.TCompensate, e.clock, string(rt.id), c.local, c.service, "")
		e.log.Append(wal.Record{Type: wal.RecCompensate, Proc: string(rt.id), Local: c.local, Service: c.service})
		// The base event stops contributing conflicts.
		for _, ev := range e.events {
			if ev.proc == rt.id && ev.local == c.local && !ev.inverse && !ev.compensated && !ev.erased && ev.typ == schedule.Invoke {
				ev.compensated = true
				e.removeEventEdges(ev)
			}
		}
		e.appendEvent(&engEvent{
			proc: rt.id, local: c.local, service: c.service,
			kind: activity.Compensation, typ: schedule.Invoke, inverse: true,
		}, c.seq)
	case process.StepInvoke:
		e.reg.Trace(metrics.TRecoveryStep, e.clock, string(rt.id), c.local, c.service, "")
		e.log.Append(wal.Record{
			Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service,
			Subsystem: sub.Name(), Tx: int64(c.res.Tx), Outcome: "committed",
		})
		e.appendEvent(&engEvent{
			proc: rt.id, local: c.local, service: c.service, kind: c.kind, typ: schedule.Invoke,
		}, c.seq)
		rt.committedSeq[c.local] = c.seq
	}
	if err := rt.inst.ApplyStep(c.step); err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	return nil
}

// tryFinish commits a process whose selected path has fully executed:
// the prepared non-compensatable activities are committed atomically
// via 2PC once no active conflicting predecessor remains (Lemma 1),
// then C_i is emitted.
func (e *Engine) tryFinish(rt *procRT) bool {
	if len(rt.prepared) > 0 {
		if e.hasActiveConflictPred(rt) {
			if rt.blockedSince < 0 {
				rt.blockedSince = e.clock
			}
			return false
		}
		if !e.commitPreparedSet(rt) {
			return false
		}
	}
	e.terminate(rt, true)
	return true
}

// commitPreparedSet performs the atomic 2PC commit of rt's prepared set.
func (e *Engine) commitPreparedSet(rt *procRT) bool {
	locals := make([]int, 0, len(rt.prepared))
	for l := range rt.prepared {
		// Skip transactions already marked for rollback (a failure plan
		// abandoned their branch; the queued StepAbortPrepared resolves
		// them).
		if rt.inst.Status(l) == process.Prepared {
			locals = append(locals, l)
		}
	}
	sort.Ints(locals)
	if len(locals) == 0 {
		return true
	}
	// Weak-order preflight: every weakly invoked participant must be
	// committable (its commit-order predecessors committed). A still-
	// pending predecessor delays the whole set; an aborted predecessor
	// rolls the participant back for re-invocation.
	for _, l := range locals {
		ptx := rt.prepared[l]
		if !ptx.weak {
			continue
		}
		switch err := ptx.sub.WeakCommittable(ptx.tx); {
		case errors.Is(err, subsystem.ErrOrder):
			e.metrics.WeakOrderWaits++
			e.reg.Inc(metrics.WeakOrderWaits)
			e.reg.Trace(metrics.TWeakWait, e.clock, string(rt.id), l, ptx.service, "")
			return false
		case errors.Is(err, subsystem.ErrDependencyAborted):
			e.metrics.WeakRestarts++
			e.reg.Inc(metrics.WeakRestarts)
			e.reg.Inc(metrics.DeferredRolledBack)
			e.reg.Trace(metrics.TWeakRestart, e.clock, string(rt.id), l, ptx.service, "")
			if err := ptx.sub.AbortPrepared(ptx.tx); err != nil {
				panic(fmt.Sprintf("scheduler: weak rollback: %v", err))
			}
			if err := rt.inst.ResetPrepared(l); err != nil {
				panic(fmt.Sprintf("scheduler: %v", err))
			}
			for _, ev := range e.events {
				if ev.proc == rt.id && ev.local == l && ev.tentative && !ev.erased {
					ev.erased = true
					e.removeEventEdges(ev)
				}
			}
			delete(rt.prepared, l)
			e.bump()
			return false // the activity re-invokes; try again later
		case err != nil:
			panic(fmt.Sprintf("scheduler: weak committable: %v", err))
		}
	}
	parts := make([]twopc.Participant, 0, len(locals))
	for _, l := range locals {
		ptx := rt.prepared[l]
		parts = append(parts, twopc.Participant{
			Sub: ptx.sub, Tx: ptx.tx, Proc: string(rt.id), Local: l, Service: ptx.service,
		})
	}
	if err := e.coord.CommitAll(string(rt.id), parts); err != nil {
		panic(fmt.Sprintf("scheduler: 2PC commit of %s: %v", rt.id, err))
	}
	for _, l := range locals {
		e.metrics.TwoPCCommits++
		e.reg.Inc(metrics.DeferredCommitted2PC)
		e.reg.Trace(metrics.TTwoPCCommit, e.clock, string(rt.id), l, rt.prepared[l].service, "")
		if err := rt.inst.MarkCommitted(l); err != nil {
			panic(fmt.Sprintf("scheduler: %v", err))
		}
		// The activity joins the observed schedule at its *commit*
		// point, not its prepare point: its commit was deferred, and a
		// prefix of the schedule cut between prepare and commit must
		// not contain it (the subsystem's locks guarantee no
		// conflicting activity ran in between, so moving it is
		// conflict-order preserving).
		for i, ev := range e.events {
			if ev.proc == rt.id && ev.local == l && ev.tentative && !ev.erased {
				ev.tentative = false
				e.seq++
				ev.seq = e.seq
				e.events = append(append(e.events[:i:i], e.events[i+1:]...), ev)
				rt.committedSeq[l] = ev.seq
				break
			}
		}
		delete(rt.prepared, l)
	}
	if rt.blockedSince >= 0 {
		e.reg.Observe(metrics.HistProcBlocked, e.clock-rt.blockedSince)
		rt.blockedSince = -1
	}
	e.bump()
	return true
}

// commitDeferredIfPossible is called when a process terminates: other
// processes waiting on it may now commit their prepared sets and
// continue (their successors were deferred).
func (e *Engine) commitDeferredIfPossible() {
	for _, rt := range e.procs {
		if rt.state != psRunning || len(rt.prepared) == 0 || rt.abortPending || len(rt.recovery) > 0 {
			continue
		}
		if !e.hasActiveConflictPred(rt) {
			e.commitPreparedSet(rt)
		}
	}
}

// finishAbort concludes an abort whose completion steps have drained.
func (e *Engine) finishAbort(rt *procRT) {
	// Roll back any leftover prepared transactions (safety net; the
	// completion normally contains explicit StepAbortPrepared steps).
	for l, ptx := range rt.prepared {
		if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
			e.metrics.Rollbacks++
			e.reg.Inc(metrics.DeferredRolledBack)
			e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), l, ptx.service, "abort leftover")
			e.log.Append(wal.Record{
				Type: wal.RecResolved, Proc: string(rt.id), Local: l,
				Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
			})
		}
		for _, ev := range e.events {
			if ev.proc == rt.id && ev.local == l && ev.tentative && !ev.erased {
				ev.erased = true
				e.removeEventEdges(ev)
			}
		}
		delete(rt.prepared, l)
	}
	e.terminate(rt, false)
	if rt.restartable && rt.restarts < e.cfg.MaxRestarts {
		e.restart(rt)
	}
}

// terminate emits the terminal event of a process.
func (e *Engine) terminate(rt *procRT, committed bool) {
	rt.state = psDone
	rt.end = e.clock
	out := e.outcomes[rt.id]
	out.End = e.clock
	out.Committed = committed
	out.Aborted = !committed
	fate := "aborted"
	if committed {
		e.metrics.CommittedProcs++
		e.reg.Inc(metrics.ProcsCommitted)
		fate = "committed"
	} else {
		e.metrics.AbortedProcs++
		e.reg.Inc(metrics.ProcsAborted)
	}
	e.reg.Observe(metrics.HistProcDuration, e.clock-rt.start)
	e.reg.Trace(metrics.TTerminate, e.clock, string(rt.id), 0, "", fate)
	e.log.Append(wal.Record{Type: wal.RecTerminate, Proc: string(rt.id), Committed: committed})
	e.seq++
	e.appendEvent(&engEvent{proc: rt.id, typ: schedule.Terminate, committed: committed}, e.seq)
	rt.inst.MarkTerminated(committed)
	e.commitDeferredIfPossible()
}

// restart re-enters an aborted process as a fresh instance under a
// derived id.
func (e *Engine) restart(rt *procRT) {
	e.metrics.Restarts++
	e.reg.Inc(metrics.ProcsRestarted)
	newID := process.ID(fmt.Sprintf("%s+r%d", rt.origin, rt.restarts+1))
	def := rt.def.WithID(newID)
	nrt := e.newRT(def, rt.arrival, rt.origin)
	nrt.restarts = rt.restarts + 1
	// Exponential backoff before re-entry, so the contention that
	// caused the abort can drain first.
	nrt.arrivalTime = e.clock + int64(4<<nrt.restarts)
	e.outcomes[newID].Restarts = nrt.restarts
	e.pending = append(e.pending, nrt) // admitted (and logged) at its backoff arrival
}

// debugDeny traces step denials when DebugFirstStall is on.
func (e *Engine) debugDeny(rt *procRT, st process.Step, why string) {
	if e.cfg.DebugFirstStall && e.metrics.PolicyWaits%500 == 0 {
		fmt.Printf("DENY step %s/%v: %s (clock %d)\n", rt.id, st, why, e.clock)
	}
}

// stallDump renders the engine state for stall diagnostics.
func (e *Engine) stallDump() string {
	s := fmt.Sprintf("clock=%d pending=%d\n", e.clock, len(e.pending))
	for _, rt := range e.procs {
		if rt.state == psDone {
			continue
		}
		s += fmt.Sprintf("  %s state=%d mode=%v done=%v running=%d recovery=%d busy=%v abortPending=%v prepared=%d frontier=%v\n",
			rt.id, rt.state, rt.inst.Mode(), rt.inst.Done(), len(rt.running), len(rt.recovery), rt.recoveryBusy, rt.abortPending, len(rt.prepared), rt.inst.Frontier())
		if len(rt.recovery) > 0 {
			st := rt.recovery[0]
			s += fmt.Sprintf("    next step: %v\n", st)
			if st.Kind == process.StepInvoke {
				fc := e.forced()
				ok := fc.acyclicWithActive(fc.newEdges(rt.id, st.Service, true), func(id process.ID) bool {
					q := e.byID[id]
					return q != nil && q.state != psDone
				})
				s += fmt.Sprintf("    gates: lemma3=%v lemma1fwd=%v forced=%v newEdges=%v\n",
					e.lemma3Clear(rt, st), e.lemma1ClearForward(rt, st), ok, fc.newEdges(rt.id, st.Service, true))
			}
		}
	}
	for k, n := range e.edges {
		if n > 0 {
			s += fmt.Sprintf("  edge %s->%s (%d)\n", k[0], k[1], n)
		}
	}
	for sub, recs := range e.fed.InDoubt() {
		s += fmt.Sprintf("  in-doubt at %s: %v\n", sub, recs)
	}
	for _, ev := range e.events {
		if ev.typ != schedule.Invoke {
			continue
		}
		s += fmt.Sprintf("  ev seq=%d %s/%d %s inv=%v tent=%v comp=%v erased=%v\n",
			ev.seq, ev.proc, ev.local, ev.service, ev.inverse, ev.tentative, ev.compensated, ev.erased)
	}
	return s
}

// resolveStall aborts one blocked process to break a scheduling stall.
func (e *Engine) resolveStall() bool {
	var victim *procRT
	for _, rt := range e.procs {
		if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
			continue
		}
		if rt.inst.Done() {
			continue // waiting to finish, not a dispatch stall
		}
		if victim == nil || rt.arrival > victim.arrival {
			victim = rt
		}
	}
	if victim == nil {
		// A done process blocked on its deferred 2PC commit can still
		// deadlock with an aborting process's completion; abort it too
		// (it restarts afterwards).
		for _, rt := range e.procs {
			if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
				continue
			}
			if rt.inst.Done() && len(rt.prepared) > 0 && e.hasActiveConflictPred(rt) {
				if victim == nil || rt.arrival > victim.arrival {
					victim = rt
				}
			}
		}
	}
	if victim == nil {
		return false
	}
	if e.cfg.DebugFirstStall && e.metrics.VictimAborts == 0 {
		fmt.Printf("FIRST STALL victim=%s\n%s\n", victim.id, e.stallDump())
	}
	e.metrics.VictimAborts++
	e.reg.Inc(metrics.VictimAborts)
	e.reg.Trace(metrics.TVictim, e.clock, string(victim.id), 0, "", "stall resolution")
	victim.restartable = true
	victim.abortPending = true
	return e.dispatchProc(victim)
}

// buildSchedule materializes the observed process schedule from the
// finalized events.
func (e *Engine) buildSchedule() *schedule.Schedule {
	s := schedule.MustNew(e.table.Clone())
	for _, p := range e.allProcs {
		if err := s.AddProcess(p); err != nil {
			panic(err)
		}
	}
	for _, ev := range e.events {
		if ev.erased || ev.tentative {
			continue
		}
		s.AppendUnchecked(schedule.Event{
			Type: ev.typ, Proc: ev.proc, Local: ev.local, Service: ev.service,
			Kind: ev.kind, Inverse: ev.inverse, Committed: ev.committed, Group: ev.group,
		})
	}
	return s
}
