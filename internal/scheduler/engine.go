package scheduler

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// ErrCrashed is returned by Run when the configured crash point was
// reached; federation and log state survive for Recover.
var ErrCrashed = errors.New("scheduler: injected crash")

// procState is the engine-level state of a process.
type procState int

const (
	psRunning procState = iota
	psAborting
	psDone
)

// preparedTx remembers an in-doubt local transaction per activity.
type preparedTx struct {
	sub     *subsystem.Subsystem
	tx      subsystem.TxID
	service string
	seq     int64 // global completion sequence of the prepare
	weak    bool  // invoked under the weak order
}

// procRT is the runtime of one process.
type procRT struct {
	id      process.ID
	def     *process.Process
	inst    *process.Instance
	state   procState
	arrival int

	arrivalTime     int64
	recovery        []process.Step // queued recovery steps (sequential)
	recoveryBusy    bool           // a recovery step is in flight
	recoveryBusySvc string
	abortPending    bool       // abort requested, waiting for in-flight work
	restartable     bool       // restart after the pending abort completes
	origin          process.ID // subsystem identity (all restart suffixes stripped)
	base            process.ID // admitted job id restarts derive from ("base+rN")
	restarts        int
	prepared        map[int]preparedTx
	running         map[int]string // in-flight invocations: local -> service
	attempts        map[int]int
	keySeq          int // idempotency-key counter (resilient invocations)
	start, end      int64
	// blockedSince is the clock at which the finished process first
	// found its deferred 2PC commit blocked by an active conflicting
	// predecessor (-1 while not blocked); feeds HistProcBlocked.
	blockedSince int64
}

// completion is a scheduled future event in virtual time.
type completion struct {
	at, seq int64
	proc    process.ID
	isStep  bool
	step    process.Step
	local   int
	service string
	kind    activity.Kind
	res     *subsystem.Result
	failed  bool // the local transaction aborted
	weak    bool // invoked under the weak order (Section 3.6)
	tries   int  // commit-order wait retries (safety bound)
}

type completionHeap []*completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(*completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine executes a set of processes against a federation of
// transactional subsystems under a scheduling policy. The pure PRED
// decisions (conflict graph, forced ordering, Lemma 1-3 gates) live in
// internal/scheduler/policy and are shared with the concurrent runtime;
// the engine contributes the discrete-event loop, virtual time,
// subsystem interaction, 2PC, the WAL and the weak order.
type Engine struct {
	cfg   Config
	fed   *subsystem.Federation
	table *conflict.Table
	log   wal.Log
	coord *twopc.Coordinator
	pol   *policy.State

	clock   int64
	seq     int64
	queue   completionHeap
	procs   []*procRT
	byID    map[process.ID]*procRT
	pending []*procRT // not yet admitted (Serial/Conservative gating)

	metrics     Metrics
	reg         *metrics.Registry // observability registry (nil = no-op)
	completions int
	crashed     bool
	outcomes    map[process.ID]*Outcome
	origProcs   []*process.Process
	allProcs    []*process.Process // including restarts

	// Checkpointing state (Config.CheckpointEvery).
	ckptAppends int  // force-log appends since the last checkpoint
	ckptTaken   int  // checkpoints taken this run
	ckptBusy    bool // a checkpoint append must not recurse
}

// engView adapts the engine's process table to the policy's View.
type engView struct{ e *Engine }

func (v engView) Procs() []process.ID {
	out := make([]process.ID, len(v.e.procs))
	for i, rt := range v.e.procs {
		out[i] = rt.id
	}
	return out
}

func (v engView) Phase(id process.ID) policy.Phase {
	rt := v.e.byID[id]
	if rt == nil {
		return policy.Done
	}
	switch rt.state {
	case psRunning:
		return policy.Running
	case psAborting:
		return policy.Aborting
	default:
		return policy.Done
	}
}

func (v engView) Arrival(id process.ID) int {
	if rt := v.e.byID[id]; rt != nil {
		return rt.arrival
	}
	return 0
}

func (v engView) Instance(id process.ID) *process.Instance {
	if rt := v.e.byID[id]; rt != nil {
		return rt.inst
	}
	return nil
}

func (v engView) RecoverySteps(id process.ID) []process.Step {
	if rt := v.e.byID[id]; rt != nil {
		return rt.recovery
	}
	return nil
}

func (v engView) InFlight(id process.ID) []string {
	rt := v.e.byID[id]
	if rt == nil {
		return nil
	}
	out := make([]string, 0, len(rt.running)+1)
	for _, svc := range rt.running {
		out = append(out, svc)
	}
	if rt.recoveryBusy && rt.recoveryBusySvc != "" {
		out = append(out, rt.recoveryBusySvc)
	}
	return out
}

// view returns the policy view over the engine.
func (e *Engine) view() policy.View { return engView{e} }

// bump invalidates the policy's forced-graph cache.
func (e *Engine) bump() { e.pol.Bump() }

// conflicts is the memoized conflict check shared with the policy.
func (e *Engine) conflicts(a, b string) bool { return e.pol.Conflicts(a, b) }

// policyMode maps the engine mode onto the policy layer's mode.
func policyMode(m Mode) policy.Mode {
	switch m {
	case PRED:
		return policy.PRED
	case PREDCascade:
		return policy.PREDCascade
	case Serial:
		return policy.Serial
	case Conservative:
		return policy.Conservative
	default:
		return policy.CCOnly
	}
}

// New creates an engine over the federation. The conflict table is
// derived from the subsystems' declared read/write sets.
func New(fed *subsystem.Federation, cfg Config) (*Engine, error) {
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.GroupCommit.Enabled() {
		cfg.Log = wal.NewGroupAppender(cfg.Log, cfg.GroupCommit, cfg.Inject)
	}
	e := &Engine{
		cfg:      cfg,
		fed:      fed,
		table:    table,
		log:      cfg.Log,
		coord:    twopc.New(cfg.Log),
		reg:      cfg.Metrics,
		pol:      policy.New(table, policy.Config{Mode: policyMode(cfg.Mode), BlockPivots: cfg.BlockPivots}),
		byID:     make(map[process.ID]*procRT),
		outcomes: make(map[process.ID]*Outcome),
	}
	if e.reg != nil {
		// Wire the registry through the whole stack: the coordinator
		// (prepared-set sizes), every subsystem (invocation counters,
		// in-doubt sizes) and the WAL (append/fsync totals).
		e.coord.Metrics = e.reg
		fed.SetMetrics(e.reg)
		if il, ok := e.log.(wal.Instrumented); ok {
			il.SetMetrics(e.reg)
		}
	}
	e.coord.Inject = cfg.Inject
	return e, nil
}

// append force-logs a record, bracketing the write with the configured
// crash points. Crash injection aside, it behaves exactly like a
// direct Append to the WAL.
func (e *Engine) append(rec wal.Record) {
	e.inject("sched:before-forcelog")
	e.log.Append(rec)
	e.maybeCheckpoint()
	e.inject("sched:after-forcelog")
}

// maybeCheckpoint takes a fuzzy checkpoint (and optionally compacts
// the log) once CheckpointEvery force-log appends have accumulated.
// Checkpointing is an optimization: a failed attempt is dropped, never
// surfaced into the run. Injected crash sentinels do propagate — a
// crash inside a checkpoint is exactly what the torture battery
// exercises.
func (e *Engine) maybeCheckpoint() {
	if e.cfg.CheckpointEvery <= 0 || e.ckptBusy {
		return
	}
	e.ckptAppends++
	if e.ckptAppends < e.cfg.CheckpointEvery {
		return
	}
	if e.cfg.CheckpointLimit > 0 && e.ckptTaken >= e.cfg.CheckpointLimit {
		return
	}
	e.ckptBusy = true
	defer func() { e.ckptBusy = false }()
	if _, err := wal.TakeCheckpoint(e.log, e.conflicts, e.cfg.Inject, e.reg); err != nil {
		return
	}
	// Durable subsystems flush their pages at every checkpoint: the
	// write-ahead barrier inside the store has already forced the log,
	// and a bounded-replay recovery then also starts from near-fresh
	// pages. A flush error is dropped like a failed checkpoint — the
	// WAL remains the source of truth.
	if e.fed.Durable() {
		e.fed.FlushStores()
	}
	e.ckptAppends = 0
	e.ckptTaken++
	if e.cfg.CompactOnCheckpoint {
		if c, ok := e.log.(wal.Compactor); ok {
			c.Compact(e.cfg.Inject)
		}
	}
}

// inject fires a named crash point; no-op without a configured hook.
func (e *Engine) inject(point string) {
	if e.cfg.Inject != nil {
		e.cfg.Inject(point)
	}
}

// Table returns the conflict table the engine scheduled under.
func (e *Engine) Table() *conflict.Table { return e.table }

// Log returns the engine's write-ahead log (for recovery).
func (e *Engine) Log() wal.Log { return e.log }

// Result is the outcome of a run.
type Result struct {
	// Schedule is the observed process schedule, reconstructed from the
	// finalized events; it can be checked with PRED(), Serializable()
	// and ProcessRecoverable().
	Schedule *schedule.Schedule
	Metrics  Metrics
	Outcomes map[process.ID]*Outcome
	Crashed  bool
}

// Job is a process with an arrival time in virtual ticks.
type Job struct {
	Proc    *process.Process
	Arrival int64
}

// ValidateJobs checks that the processes of a job set have guaranteed
// termination and reference only services the federation provides with
// matching kinds; both engines run it before execution.
func ValidateJobs(fed *subsystem.Federation, jobs []Job) error {
	for _, j := range jobs {
		p := j.Proc
		if err := process.ValidateGuaranteedTermination(p); err != nil {
			return fmt.Errorf("scheduler: process %s lacks guaranteed termination: %w", p.ID, err)
		}
		for _, a := range p.Activities() {
			spec, ok := fed.Spec(a.Service)
			if !ok {
				return fmt.Errorf("scheduler: process %s uses unknown service %q", p.ID, a.Service)
			}
			if spec.Kind != a.Kind {
				return fmt.Errorf("scheduler: process %s activity %d declares %v for service %q of kind %v",
					p.ID, a.Local, a.Kind, a.Service, spec.Kind)
			}
			if a.Kind == activity.Compensatable && spec.Compensation != a.Compensation {
				return fmt.Errorf("scheduler: process %s activity %d compensation %q, subsystem provides %q",
					p.ID, a.Local, a.Compensation, spec.Compensation)
			}
		}
	}
	return nil
}

// Run executes the processes to completion (or crash) and returns the
// observed schedule plus metrics; all processes arrive at time zero.
func (e *Engine) Run(procs []*process.Process) (*Result, error) {
	jobs := make([]Job, len(procs))
	for i, p := range procs {
		jobs[i] = Job{Proc: p}
	}
	return e.RunJobs(jobs)
}

// RunJobs executes the processes to completion (or crash), admitting
// each when the virtual clock reaches its arrival time. Process
// definitions must have guaranteed termination; services they reference
// must exist in the federation.
func (e *Engine) RunJobs(jobs []Job) (res *Result, err error) {
	// An armed fault plan (Config.Inject, or a fault-wrapped WAL) stops
	// the run by panicking with a crash sentinel; recover it here and
	// hand back the partial result so the caller can drive Recover over
	// the surviving log and subsystem state.
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		crash, ok := v.(interface{ InjectedCrash() string })
		if !ok {
			panic(v)
		}
		e.crashed = true
		e.metrics.Makespan = e.clock
		res = &Result{
			Schedule: e.buildSchedule(),
			Metrics:  e.metrics,
			Outcomes: e.outcomes,
			Crashed:  true,
		}
		err = fmt.Errorf("%w (injected at %s)", ErrCrashed, crash.InjectedCrash())
	}()
	if err := ValidateJobs(e.fed, jobs); err != nil {
		return nil, err
	}
	procs := make([]*process.Process, len(jobs))
	for i, j := range jobs {
		procs[i] = j.Proc
	}
	e.origProcs = procs
	for i, j := range jobs {
		rt := e.newRT(j.Proc, i, resolveOrigin(j.Proc.ID))
		rt.base = j.Proc.ID
		rt.arrivalTime = j.Arrival
		e.pending = append(e.pending, rt)
	}
	e.admit()

	stalls := 0
	for {
		if e.crashed {
			break
		}
		progressed := e.dispatchAll()
		if e.admit() {
			progressed = true
		}
		if len(e.queue) == 0 {
			if progressed {
				continue
			}
			if e.allDone() {
				break
			}
			// Idle until the next arrival, if any.
			if next, ok := e.nextArrival(); ok && next > e.clock {
				e.clock = next
				continue
			}
			stalls++
			if stalls > e.cfg.MaxStalls {
				return nil, fmt.Errorf("scheduler: stalled with active processes and no progress (mode %v)\n%s", e.cfg.Mode, e.stallDump())
			}
			if !e.resolveStall() {
				return nil, fmt.Errorf("scheduler: unresolvable stall (mode %v)\n%s", e.cfg.Mode, e.stallDump())
			}
			continue
		}
		// Admit arrivals that precede the next completion.
		if next, ok := e.nextArrival(); ok && next <= e.queue[0].at {
			if next > e.clock {
				e.clock = next
			}
			e.admit()
			continue
		}
		ev := heap.Pop(&e.queue).(*completion)
		if ev.at > e.clock {
			e.clock = ev.at
		}
		if err := e.handleCompletion(ev); err != nil {
			return nil, err
		}
		e.completions++
		if e.cfg.CrashAfterEvents > 0 && e.completions >= e.cfg.CrashAfterEvents {
			e.crashed = true
		}
	}

	e.metrics.Makespan = e.clock
	res = &Result{
		Schedule: e.buildSchedule(),
		Metrics:  e.metrics,
		Outcomes: e.outcomes,
		Crashed:  e.crashed,
	}
	if e.crashed {
		return res, ErrCrashed
	}
	return res, nil
}

func (e *Engine) newRT(p *process.Process, arrival int, origin process.ID) *procRT {
	rt := &procRT{
		id:           p.ID,
		def:          p,
		inst:         process.NewInstance(p),
		state:        psRunning,
		arrival:      arrival,
		origin:       origin,
		prepared:     make(map[int]preparedTx),
		running:      make(map[int]string),
		attempts:     make(map[int]int),
		start:        e.clock,
		blockedSince: -1,
	}
	e.allProcs = append(e.allProcs, p)
	e.outcomes[p.ID] = &Outcome{Start: e.clock}
	return rt
}

// admit moves pending processes into the running set per the policy and
// reports whether any process was admitted.
func (e *Engine) admit() bool {
	var keep []*procRT
	admitted := false
	for _, rt := range e.pending {
		if e.mayStart(rt) {
			e.procs = append(e.procs, rt)
			e.byID[rt.id] = rt
			rt.start = e.clock
			e.outcomes[rt.id].Start = e.clock
			e.append(wal.Record{Type: wal.RecStart, Proc: string(rt.id)})
			e.reg.Inc(metrics.ProcsAdmitted)
			e.reg.Trace(metrics.TAdmit, e.clock, string(rt.id), 0, "", "")
			admitted = true
		} else {
			keep = append(keep, rt)
		}
	}
	e.pending = keep
	if admitted {
		e.bump()
	}
	return admitted
}

// nextArrival returns the earliest future arrival among pending jobs.
func (e *Engine) nextArrival() (int64, bool) {
	found := false
	var min int64
	for _, rt := range e.pending {
		if rt.arrivalTime > e.clock && (!found || rt.arrivalTime < min) {
			min = rt.arrivalTime
			found = true
		}
	}
	return min, found
}

// mayStart implements the admission policies.
func (e *Engine) mayStart(rt *procRT) bool {
	if rt.arrivalTime > e.clock {
		return false
	}
	switch e.cfg.Mode {
	case Serial:
		for _, o := range e.procs {
			if o.state != psDone {
				return false
			}
		}
		return true
	case Conservative:
		// Admit only when the process's full service footprint does not
		// conflict with that of any running process.
		mine := Footprint(rt.def)
		for _, o := range e.procs {
			if o.state == psDone {
				continue
			}
			for _, s1 := range mine {
				for _, s2 := range Footprint(o.def) {
					if e.table.Conflicts(s1, s2) {
						return false
					}
				}
			}
		}
		return true
	default:
		return true
	}
}

// Footprint lists every service a process definition can touch,
// including compensations (used by conservative admission).
func Footprint(p *process.Process) []string {
	var out []string
	for _, a := range p.Activities() {
		out = append(out, a.Service)
		if a.Compensation != "" {
			out = append(out, a.Compensation)
		}
	}
	return out
}

func (e *Engine) allDone() bool {
	if len(e.pending) > 0 {
		return false
	}
	for _, rt := range e.procs {
		if rt.state != psDone {
			return false
		}
	}
	return true
}

// cost returns the virtual duration of a service invocation.
func (e *Engine) cost(service string) int64 {
	spec, ok := e.fed.Spec(service)
	if !ok || spec.Cost < 1 {
		return 1
	}
	return int64(spec.Cost)
}

// dispatchAll attempts to make progress on every process; returns true
// when at least one new invocation was issued or terminal transition
// occurred.
func (e *Engine) dispatchAll() bool {
	progressed := false
	for _, rt := range e.procs {
		if rt.state == psDone {
			continue
		}
		if e.dispatchProc(rt) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) dispatchProc(rt *procRT) bool {
	// Recovery steps run strictly sequentially and drain before a
	// pending abort is honoured (the instance's alternative bookkeeping
	// must settle before the completion is computed).
	if len(rt.recovery) > 0 {
		if rt.recoveryBusy {
			return false
		}
		return e.dispatchRecoveryStep(rt)
	}
	// Abort requested while work was in flight: start it when drained.
	if rt.abortPending && len(rt.running) == 0 && !rt.recoveryBusy && rt.state != psAborting {
		if err := e.beginAbort(rt); err == nil {
			return true
		}
		return false
	}
	if rt.state == psAborting {
		if rt.recoveryBusy || len(rt.running) > 0 {
			return false
		}
		e.finishAbort(rt)
		return true
	}
	// Regular execution: finish or dispatch frontier activities.
	if rt.inst.Done() && len(rt.running) == 0 {
		return e.tryFinish(rt)
	}
	progressed := false
	for _, local := range rt.inst.Frontier() {
		if _, inFlight := rt.running[local]; inFlight {
			continue
		}
		a := rt.def.Activity(local)
		// Intra-process: all predecessors must be fully committed (a
		// prepared non-compensatable defers its successors, so that a
		// rolled-back prepared transaction never has committed
		// successors).
		if !e.predsCommitted(rt, local) {
			continue
		}
		if ok, why := e.pol.MayDispatch(e.view(), rt.id, a); !ok {
			e.metrics.PolicyWaits++
			e.reg.Inc(metrics.InvokePolicyBlocked)
			e.reg.Trace(metrics.TPolicyWait, e.clock, string(rt.id), local, a.Service, why)
			continue
		}
		if e.invoke(rt, local, a.Service, a.Kind, false, process.Step{}) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) predsCommitted(rt *procRT, local int) bool {
	for _, h := range rt.def.Preds(local) {
		if rt.inst.Status(h) != process.Committed {
			return false
		}
	}
	return true
}

// invoke issues a subsystem invocation and schedules its completion.
// In weak-order mode, regular activity invocations never block on
// subsystem locks: conflicting in-doubt transactions become commit-order
// dependencies instead (Section 3.6). Recovery steps always use the
// strong order.
func (e *Engine) invoke(rt *procRT, local int, service string, kind activity.Kind, isStep bool, step process.Step) bool {
	var res *subsystem.Result
	var err error
	var extraLat int64
	weak := e.cfg.WeakOrder && !isStep &&
		(e.cfg.Mode == PRED || e.cfg.Mode == PREDCascade)
	if weak {
		sub, ok := e.fed.Owner(service)
		if !ok {
			panic(fmt.Sprintf("scheduler: unknown service %q", service))
		}
		var deps []subsystem.TxID
		res, deps, err = sub.InvokeWeak(string(rt.origin), service)
		// A commit-order dependency is only safe on a transaction that
		// resolves at its own completion — a compensatable activity's
		// local transaction. Non-compensatable ones may have their 2PC
		// commit deferred until *our* process terminates (Lemma 1),
		// which would deadlock the commit order. On such a dependency,
		// roll back and wait like a strong lock conflict.
		if err == nil {
			for _, d := range deps {
				svc, ok := sub.TxService(d)
				risky := !ok
				if ok {
					if spec, found := e.fed.Spec(svc); found {
						risky = spec.Kind != activity.Compensatable && spec.Kind != activity.Compensation
					}
				}
				if risky {
					if rbErr := sub.AbortPrepared(res.Tx); rbErr != nil {
						panic(fmt.Sprintf("scheduler: weak fallback rollback: %v", rbErr))
					}
					e.metrics.Invocations++
					e.metrics.LockWaits++
					e.reg.Inc(metrics.InvokeLockBlocked)
					e.reg.Trace(metrics.TLockWait, e.clock, string(rt.id), local, service, "weak-order dependency on non-compensatable")
					return false
				}
			}
		}
		e.metrics.WeakDeps += int64(len(deps))
		e.reg.Add(metrics.WeakDeps, int64(len(deps)))
	} else if e.cfg.Resilience != nil {
		// Idempotency key: fresh per logical invocation (keySeq) and per
		// incarnation (rt.id carries the restart suffix), reused by the
		// layer across transport attempts of this one invocation.
		key := fmt.Sprintf("%s#%d", rt.id, rt.keySeq)
		rt.keySeq++
		res, extraLat, err = e.cfg.Resilience.InvokeResilient(
			string(rt.origin), service, kind, subsystem.Prepare, key)
	} else {
		res, err = e.fed.Invoke(string(rt.origin), service, subsystem.Prepare)
	}
	e.metrics.Invocations++
	switch {
	case errors.Is(err, subsystem.ErrLocked):
		e.metrics.LockWaits++
		e.reg.Inc(metrics.InvokeLockBlocked)
		e.reg.Trace(metrics.TLockWait, e.clock, string(rt.id), local, service, "")
		return false
	case subsystem.IsInvocationFailure(err):
		// A genuine local abort, or a transport failure the resilience
		// layer could not mask (retry budget exhausted, circuit open, or
		// a non-retriable kind). Either way the invocation provably left
		// no prepared transaction: take the failed-completion path —
		// retriable activities are re-invoked, others go to ◁
		// alternatives / backward recovery.
		res = nil
	case err != nil:
		panic(fmt.Sprintf("scheduler: invoke %s/%s: %v", rt.id, service, err))
	}
	e.seq++
	c := &completion{
		at: e.clock + e.cost(service) + extraLat, seq: e.seq,
		proc: rt.id, isStep: isStep, step: step,
		local: local, service: service, kind: kind,
		res: res, failed: res == nil, weak: weak,
	}
	if isStep {
		rt.recoveryBusy = true
		rt.recoveryBusySvc = service
	} else {
		rt.running[local] = service
	}
	e.bump()
	e.append(wal.Record{
		Type: wal.RecDispatch, Proc: string(rt.id), Local: local, Service: service,
	})
	e.reg.Inc(metrics.InvokeDispatched)
	e.reg.Trace(metrics.TDispatch, e.clock, string(rt.id), local, service, "")
	heap.Push(&e.queue, c)
	return true
}

// handleCompletion processes one finished invocation.
func (e *Engine) handleCompletion(c *completion) error {
	rt := e.byID[c.proc]
	if rt == nil {
		return fmt.Errorf("scheduler: completion for unknown process %s", c.proc)
	}
	if c.isStep {
		return e.handleStepCompletion(rt, c)
	}
	delete(rt.running, c.local)
	e.bump()
	if c.tries == 0 {
		// First completion of this invocation (not a commit-order wait
		// retry): record the per-service latency.
		e.reg.ObserveService(c.service, e.cost(c.service))
	}

	// Orphaned completion: while the invocation was in flight, its
	// branch was abandoned or the process began aborting (a parallel
	// sibling failed). The outcome is discarded; a successful local
	// transaction is rolled back — atomicity guarantees no effects.
	if st := rt.inst.Status(c.local); st != process.Pending {
		if !c.failed && c.res != nil {
			sub, _ := e.fed.Owner(c.service)
			if err := sub.AbortPrepared(c.res.Tx); err == nil {
				e.metrics.Rollbacks++
				e.reg.Inc(metrics.RollbacksOrphaned)
				e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), c.local, c.service, "orphaned completion")
				e.append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: c.local,
					Service: c.service, Subsystem: sub.Name(), Tx: int64(c.res.Tx), Commit: false,
				})
			}
		}
		return nil
	}

	if c.failed {
		if c.kind.GuaranteedToCommit() {
			// Transient failure of a retriable activity: re-invoke.
			e.metrics.Retries++
			e.reg.Inc(metrics.RetriesTransient)
			e.reg.Trace(metrics.TRetry, e.clock, string(rt.id), c.local, c.service, "")
			rt.attempts[c.local]++
			e.append(wal.Record{Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service, Outcome: "aborted"})
			return nil
		}
		return e.handlePermanentFailure(rt, c)
	}

	// Success: the local transaction is prepared at the subsystem.
	e.append(wal.Record{
		Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service,
		Subsystem: e.subsystemOf(c.service), Tx: int64(c.res.Tx), Outcome: "prepared",
	})
	if e.commitImmediately(rt, c.kind) {
		sub, _ := e.fed.Owner(c.service)
		if c.weak {
			// Commit-order serializability (Section 3.6): the commit
			// may have to wait for weakly preceding transactions, or
			// the invocation may have to be redone when one of them
			// aborted.
			switch err := sub.WeakCommittable(c.res.Tx); {
			case errors.Is(err, subsystem.ErrOrder):
				c.tries++
				if c.tries > 100000 {
					return fmt.Errorf("scheduler: weak commit of %s/%s starved (commit-order wait)", rt.id, c.service)
				}
				e.metrics.WeakOrderWaits++
				e.reg.Inc(metrics.WeakOrderWaits)
				e.reg.Trace(metrics.TWeakWait, e.clock, string(rt.id), c.local, c.service, "")
				e.seq++
				c.at = e.clock + 1
				c.seq = e.seq
				rt.running[c.local] = c.service // still occupies its slot
				heap.Push(&e.queue, c)
				return nil
			case errors.Is(err, subsystem.ErrDependencyAborted):
				e.metrics.WeakRestarts++
				e.reg.Inc(metrics.WeakRestarts)
				e.reg.Trace(metrics.TWeakRestart, e.clock, string(rt.id), c.local, c.service, "")
				if err := sub.AbortPrepared(c.res.Tx); err != nil {
					return fmt.Errorf("scheduler: weak rollback %s/%s: %w", rt.id, c.service, err)
				}
				// The activity stays pending and is simply re-invoked;
				// this is not a failure of the process (Section 3.6).
				return nil
			case err != nil:
				return fmt.Errorf("scheduler: weak commit %s/%s: %w", rt.id, c.service, err)
			}
		}
		if err := sub.CommitPrepared(c.res.Tx); err != nil {
			return fmt.Errorf("scheduler: commit %s/%s: %w", rt.id, c.service, err)
		}
		e.append(wal.Record{
			Type: wal.RecResolved, Proc: string(rt.id), Local: c.local,
			Service: c.service, Subsystem: sub.Name(), Tx: int64(c.res.Tx), Commit: true,
		})
		if err := rt.inst.MarkCommitted(c.local); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
		e.pol.AppendEvent(&policy.Event{
			Seq: c.seq, Proc: rt.id, Local: c.local, Service: c.service, Kind: c.kind, Typ: schedule.Invoke,
		})
		e.reg.Inc(metrics.CommitsImmediate)
		e.reg.Trace(metrics.TCommit, e.clock, string(rt.id), c.local, c.service, "")
	} else {
		// Deferred commit (Lemma 1): hold the prepared transaction.
		e.metrics.Deferrals++
		e.reg.Inc(metrics.CommitsDeferred)
		if e.reg != nil {
			e.reg.Trace(metrics.TDeferCommit, e.clock, string(rt.id), c.local, c.service, e.pol.FirstActivePred(e.view(), rt.id))
		}
		if err := rt.inst.MarkPrepared(c.local); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
		sub, _ := e.fed.Owner(c.service)
		rt.prepared[c.local] = preparedTx{sub: sub, tx: c.res.Tx, service: c.service, seq: c.seq, weak: c.weak}
		e.pol.AppendEvent(&policy.Event{
			Seq: c.seq, Proc: rt.id, Local: c.local, Service: c.service, Kind: c.kind,
			Typ: schedule.Invoke, Tentative: true,
		})
	}
	return nil
}

// commitImmediately decides whether an activity's local transaction
// commits right at completion. Compensatable activities always commit
// (they are undoable); non-compensatable ones commit immediately only
// when the mode ignores recovery (CCOnly) or never interleaves
// (Serial/Conservative), or when the process has no active conflicting
// predecessor (Lemma 1's deferral condition is already satisfied).
func (e *Engine) commitImmediately(rt *procRT, kind activity.Kind) bool {
	if kind == activity.Compensatable {
		return true
	}
	switch e.cfg.Mode {
	case CCOnly, Serial, Conservative:
		return true
	default:
		return !e.pol.HasActiveConflictPred(e.view(), rt.id)
	}
}

// subsystemOf names the owning subsystem of a service.
func (e *Engine) subsystemOf(service string) string {
	if sub, ok := e.fed.Owner(service); ok {
		return sub.Name()
	}
	return ""
}

// handlePermanentFailure reacts to the definitive failure of a
// compensatable or pivot activity (Definition 4).
func (e *Engine) handlePermanentFailure(rt *procRT, c *completion) error {
	e.append(wal.Record{Type: wal.RecFailed, Proc: string(rt.id), Local: c.local, Service: c.service})
	e.reg.Trace(metrics.TFail, e.clock, string(rt.id), c.local, c.service, "")
	e.seq++
	e.pol.AppendEvent(&policy.Event{
		Seq: e.seq, Proc: rt.id, Local: c.local, Service: c.service, Kind: c.kind, Typ: schedule.FailedInvoke,
	})
	plan, err := rt.inst.MarkFailed(c.local)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	if rt.abortPending {
		// An abort is already queued; its completion supersedes the
		// failure's local plan.
		return nil
	}
	if plan.Abort {
		rt.restartable = false
		rt.state = psAborting
		rt.recovery = plan.Steps
		e.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		e.reg.Inc(metrics.BackwardRecoveries)
		e.reg.Trace(metrics.TBackward, e.clock, string(rt.id), c.local, c.service, "")
		e.seq++
		e.pol.AppendEvent(&policy.Event{Seq: e.seq, Proc: rt.id, Typ: schedule.AbortBegin})
		e.cascadeDependents(rt)
		return nil
	}
	rt.recovery = plan.Steps
	e.reg.Inc(metrics.ForwardRecoveries)
	e.reg.Trace(metrics.TForward, e.clock, string(rt.id), c.local, c.service, "")
	return nil
}

// beginAbort starts the abort A_i of a process, computing its completion
// C(P_i) and queueing the steps.
func (e *Engine) beginAbort(rt *procRT) error {
	steps, err := rt.inst.Abort()
	if err != nil {
		return fmt.Errorf("scheduler: abort %s: %w", rt.id, err)
	}
	rt.abortPending = false
	rt.state = psAborting
	rt.recovery = steps
	e.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
	e.reg.Inc(metrics.BackwardRecoveries)
	e.reg.Trace(metrics.TBackward, e.clock, string(rt.id), 0, "", "")
	e.seq++
	e.pol.AppendEvent(&policy.Event{Seq: e.seq, Proc: rt.id, Typ: schedule.AbortBegin})
	e.cascadeDependents(rt)
	return nil
}

// cascadeDependents aborts active processes that depend on rt through
// conflict edges when rt's completion will compensate conflicting work
// (cascading aborts, only possible in PREDCascade mode). The Lemma-2
// dispatch guard makes the dependents' compensations execute before
// rt's own.
func (e *Engine) cascadeDependents(rt *procRT) {
	for _, id := range e.pol.CascadeVictims(e.view(), rt.id, rt.recovery) {
		q := e.byID[id]
		if q == nil || q.state != psRunning || q.abortPending {
			continue
		}
		e.metrics.Cascades++
		e.reg.Inc(metrics.CascadeAborts)
		e.reg.Trace(metrics.TCascade, e.clock, string(q.id), 0, "", string(rt.id))
		q.abortPending = true
		q.restartable = true
	}
}

// dispatchRecoveryStep issues the next queued recovery step, honouring
// the cross-process ordering constraints of Lemmas 2 and 3.
func (e *Engine) dispatchRecoveryStep(rt *procRT) bool {
	st := rt.recovery[0]
	switch st.Kind {
	case process.StepAbortPrepared:
		// Resolve immediately (no subsystem work to simulate).
		rt.recovery = rt.recovery[1:]
		ptx, ok := rt.prepared[st.Local]
		if ok {
			if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
				e.metrics.Rollbacks++
				e.reg.Inc(metrics.DeferredRolledBack)
				e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), st.Local, ptx.service, "abandoned branch")
				e.append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: st.Local,
					Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
				})
			}
			delete(rt.prepared, st.Local)
		}
		// Erase the tentative event and its edges.
		e.pol.EraseTentative(rt.id, st.Local)
		_ = rt.inst.ApplyStep(st)
		e.bump()
		return true
	case process.StepCompensate:
		if e.cfg.Mode != CCOnly && !e.pol.Lemma2Clear(e.view(), rt.id, st) {
			e.metrics.PolicyWaits++
			return false
		}
		return e.invoke(rt, st.Local, st.Service, activity.Compensation, true, st)
	case process.StepInvoke:
		if e.cfg.Mode != CCOnly {
			if !e.pol.Lemma3Clear(e.view(), rt.id, st) {
				e.debugDeny(rt, st, "lemma3")
				e.metrics.PolicyWaits++
				return false
			}
			if !e.pol.Lemma1ClearForward(e.view(), rt.id, st) {
				e.debugDeny(rt, st, "lemma1fwd")
				e.metrics.PolicyWaits++
				return false
			}
			if !e.pol.StepForcedClear(e.view(), rt.id, st) {
				e.debugDeny(rt, st, "forced-cycle")
				e.metrics.PolicyWaits++
				return false
			}
			if o, defer2 := e.pol.DeferToAborting(e.view(), rt.id, st); defer2 {
				e.debugDeny(rt, st, fmt.Sprintf("defer-to-%s", o))
				e.metrics.PolicyWaits++
				return false
			}
		}
		a := rt.def.Activity(st.Local)
		return e.invoke(rt, st.Local, st.Service, a.Kind, true, st)
	}
	return false
}

// handleStepCompletion finishes a recovery-step invocation.
func (e *Engine) handleStepCompletion(rt *procRT, c *completion) error {
	rt.recoveryBusy = false
	rt.recoveryBusySvc = ""
	e.bump()
	e.reg.ObserveService(c.service, e.cost(c.service))
	if c.failed {
		// Compensations and forward-recovery activities are retriable;
		// transient failures are re-invoked.
		e.metrics.Retries++
		e.reg.Inc(metrics.RetriesTransient)
		e.reg.Trace(metrics.TRetry, e.clock, string(rt.id), c.local, c.service, "recovery step")
		return nil
	}
	// Log the step outcome, then commit its local transaction. The
	// record carries the subsystem and transaction id so that a crash
	// in the window between the force-log and the commit is repaired by
	// recovery's redo rule (Analyze collects these into
	// ProcImage.RedoCommit) instead of presuming abort.
	sub, _ := e.fed.Owner(c.service)
	switch c.step.Kind {
	case process.StepCompensate:
		e.append(wal.Record{
			Type: wal.RecCompensate, Proc: string(rt.id), Local: c.local, Service: c.service,
			Subsystem: sub.Name(), Tx: int64(c.res.Tx),
		})
	case process.StepInvoke:
		e.append(wal.Record{
			Type: wal.RecOutcome, Proc: string(rt.id), Local: c.local, Service: c.service,
			Subsystem: sub.Name(), Tx: int64(c.res.Tx), Outcome: "committed",
		})
	}
	if err := sub.CommitPrepared(c.res.Tx); err != nil {
		return fmt.Errorf("scheduler: commit step %s/%s: %w", rt.id, c.service, err)
	}
	if len(rt.recovery) > 0 && rt.recovery[0] == c.step {
		rt.recovery = rt.recovery[1:]
	}
	switch c.step.Kind {
	case process.StepCompensate:
		e.metrics.Compensations++
		e.reg.Inc(metrics.CompensationsIssued)
		e.reg.Trace(metrics.TCompensate, e.clock, string(rt.id), c.local, c.service, "")
		// The base event stops contributing conflicts.
		e.pol.MarkCompensated(rt.id, c.local)
		e.pol.AppendEvent(&policy.Event{
			Seq: c.seq, Proc: rt.id, Local: c.local, Service: c.service,
			Kind: activity.Compensation, Typ: schedule.Invoke, Inverse: true,
		})
	case process.StepInvoke:
		e.reg.Trace(metrics.TRecoveryStep, e.clock, string(rt.id), c.local, c.service, "")
		e.pol.AppendEvent(&policy.Event{
			Seq: c.seq, Proc: rt.id, Local: c.local, Service: c.service, Kind: c.kind, Typ: schedule.Invoke,
		})
	}
	if err := rt.inst.ApplyStep(c.step); err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	return nil
}

// tryFinish commits a process whose selected path has fully executed:
// the prepared non-compensatable activities are committed atomically
// via 2PC once no active conflicting predecessor remains (Lemma 1),
// then C_i is emitted.
func (e *Engine) tryFinish(rt *procRT) bool {
	if len(rt.prepared) > 0 {
		if e.pol.HasActiveConflictPred(e.view(), rt.id) {
			if rt.blockedSince < 0 {
				rt.blockedSince = e.clock
			}
			return false
		}
		if !e.commitPreparedSet(rt) {
			return false
		}
	}
	e.terminate(rt, true)
	return true
}

// commitPreparedSet performs the atomic 2PC commit of rt's prepared set.
func (e *Engine) commitPreparedSet(rt *procRT) bool {
	locals := make([]int, 0, len(rt.prepared))
	for l := range rt.prepared {
		// Skip transactions already marked for rollback (a failure plan
		// abandoned their branch; the queued StepAbortPrepared resolves
		// them).
		if rt.inst.Status(l) == process.Prepared {
			locals = append(locals, l)
		}
	}
	sort.Ints(locals)
	if len(locals) == 0 {
		return true
	}
	// Weak-order preflight: every weakly invoked participant must be
	// committable (its commit-order predecessors committed). A still-
	// pending predecessor delays the whole set; an aborted predecessor
	// rolls the participant back for re-invocation.
	for _, l := range locals {
		ptx := rt.prepared[l]
		if !ptx.weak {
			continue
		}
		switch err := ptx.sub.WeakCommittable(ptx.tx); {
		case errors.Is(err, subsystem.ErrOrder):
			e.metrics.WeakOrderWaits++
			e.reg.Inc(metrics.WeakOrderWaits)
			e.reg.Trace(metrics.TWeakWait, e.clock, string(rt.id), l, ptx.service, "")
			return false
		case errors.Is(err, subsystem.ErrDependencyAborted):
			e.metrics.WeakRestarts++
			e.reg.Inc(metrics.WeakRestarts)
			e.reg.Inc(metrics.DeferredRolledBack)
			e.reg.Trace(metrics.TWeakRestart, e.clock, string(rt.id), l, ptx.service, "")
			if err := ptx.sub.AbortPrepared(ptx.tx); err != nil {
				panic(fmt.Sprintf("scheduler: weak rollback: %v", err))
			}
			if err := rt.inst.ResetPrepared(l); err != nil {
				panic(fmt.Sprintf("scheduler: %v", err))
			}
			e.pol.EraseTentative(rt.id, l)
			delete(rt.prepared, l)
			e.bump()
			return false // the activity re-invokes; try again later
		case err != nil:
			panic(fmt.Sprintf("scheduler: weak committable: %v", err))
		}
	}
	parts := make([]twopc.Participant, 0, len(locals))
	for _, l := range locals {
		ptx := rt.prepared[l]
		parts = append(parts, twopc.Participant{
			Sub: ptx.sub, Tx: ptx.tx, Proc: string(rt.id), Local: l, Service: ptx.service,
		})
	}
	if err := e.coord.CommitAll(string(rt.id), parts); err != nil {
		panic(fmt.Sprintf("scheduler: 2PC commit of %s: %v", rt.id, err))
	}
	for _, l := range locals {
		e.metrics.TwoPCCommits++
		e.reg.Inc(metrics.DeferredCommitted2PC)
		e.reg.Trace(metrics.TTwoPCCommit, e.clock, string(rt.id), l, rt.prepared[l].service, "")
		if err := rt.inst.MarkCommitted(l); err != nil {
			panic(fmt.Sprintf("scheduler: %v", err))
		}
		e.seq++
		e.pol.FinalizeTentative(rt.id, l, e.seq)
		delete(rt.prepared, l)
	}
	if rt.blockedSince >= 0 {
		e.reg.Observe(metrics.HistProcBlocked, e.clock-rt.blockedSince)
		rt.blockedSince = -1
	}
	e.bump()
	return true
}

// commitDeferredIfPossible is called when a process terminates: other
// processes waiting on it may now commit their prepared sets and
// continue (their successors were deferred).
func (e *Engine) commitDeferredIfPossible() {
	for _, rt := range e.procs {
		if rt.state != psRunning || len(rt.prepared) == 0 || rt.abortPending || len(rt.recovery) > 0 {
			continue
		}
		if !e.pol.HasActiveConflictPred(e.view(), rt.id) {
			e.commitPreparedSet(rt)
		}
	}
}

// finishAbort concludes an abort whose completion steps have drained.
func (e *Engine) finishAbort(rt *procRT) {
	// Roll back any leftover prepared transactions (safety net; the
	// completion normally contains explicit StepAbortPrepared steps).
	for l, ptx := range rt.prepared {
		if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
			e.metrics.Rollbacks++
			e.reg.Inc(metrics.DeferredRolledBack)
			e.reg.Trace(metrics.TRollback, e.clock, string(rt.id), l, ptx.service, "abort leftover")
			e.append(wal.Record{
				Type: wal.RecResolved, Proc: string(rt.id), Local: l,
				Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
			})
		}
		e.pol.EraseTentative(rt.id, l)
		delete(rt.prepared, l)
	}
	e.terminate(rt, false)
	if rt.restartable && rt.restarts < e.cfg.MaxRestarts {
		e.restart(rt)
	}
}

// terminate emits the terminal event of a process.
func (e *Engine) terminate(rt *procRT, committed bool) {
	rt.state = psDone
	rt.end = e.clock
	out := e.outcomes[rt.id]
	out.End = e.clock
	out.Committed = committed
	out.Aborted = !committed
	fate := "aborted"
	if committed {
		e.metrics.CommittedProcs++
		e.reg.Inc(metrics.ProcsCommitted)
		fate = "committed"
	} else {
		e.metrics.AbortedProcs++
		e.reg.Inc(metrics.ProcsAborted)
	}
	e.reg.Observe(metrics.HistProcDuration, e.clock-rt.start)
	e.reg.Trace(metrics.TTerminate, e.clock, string(rt.id), 0, "", fate)
	e.append(wal.Record{Type: wal.RecTerminate, Proc: string(rt.id), Committed: committed})
	e.seq++
	e.pol.AppendEvent(&policy.Event{Seq: e.seq, Proc: rt.id, Typ: schedule.Terminate, Committed: committed})
	rt.inst.MarkTerminated(committed)
	e.commitDeferredIfPossible()
}

// restart re-enters an aborted process as a fresh instance under a
// derived id.
func (e *Engine) restart(rt *procRT) {
	e.metrics.Restarts++
	e.reg.Inc(metrics.ProcsRestarted)
	newID := process.ID(fmt.Sprintf("%s+r%d", rt.base, rt.restarts+1))
	def := rt.def.WithID(newID)
	nrt := e.newRT(def, rt.arrival, rt.origin)
	nrt.base = rt.base
	nrt.restarts = rt.restarts + 1
	// Exponential backoff before re-entry, so the contention that
	// caused the abort can drain first.
	nrt.arrivalTime = e.clock + int64(4<<nrt.restarts)
	e.outcomes[newID].Restarts = nrt.restarts
	e.pending = append(e.pending, nrt) // admitted (and logged) at its backoff arrival
}

// debugDeny traces step denials when DebugFirstStall is on.
func (e *Engine) debugDeny(rt *procRT, st process.Step, why string) {
	if e.cfg.DebugFirstStall && e.metrics.PolicyWaits%500 == 0 {
		fmt.Printf("DENY step %s/%v: %s (clock %d)\n", rt.id, st, why, e.clock)
	}
}

// stallDump renders the engine state for stall diagnostics.
func (e *Engine) stallDump() string {
	s := fmt.Sprintf("clock=%d pending=%d\n", e.clock, len(e.pending))
	for _, rt := range e.procs {
		if rt.state == psDone {
			continue
		}
		s += fmt.Sprintf("  %s state=%d mode=%v done=%v running=%d recovery=%d busy=%v abortPending=%v prepared=%d frontier=%v\n",
			rt.id, rt.state, rt.inst.Mode(), rt.inst.Done(), len(rt.running), len(rt.recovery), rt.recoveryBusy, rt.abortPending, len(rt.prepared), rt.inst.Frontier())
		if len(rt.recovery) > 0 {
			s += fmt.Sprintf("    next step: %v\n", rt.recovery[0])
		}
	}
	for _, k := range e.pol.EdgeList() {
		s += fmt.Sprintf("  edge %s->%s\n", k[0], k[1])
	}
	for sub, recs := range e.fed.InDoubt() {
		s += fmt.Sprintf("  in-doubt at %s: %v\n", sub, recs)
	}
	return s
}

// resolveStall aborts one blocked process to break a scheduling stall.
func (e *Engine) resolveStall() bool {
	var victim *procRT
	for _, rt := range e.procs {
		if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
			continue
		}
		if rt.inst.Done() {
			continue // waiting to finish, not a dispatch stall
		}
		if victim == nil || rt.arrival > victim.arrival {
			victim = rt
		}
	}
	if victim == nil {
		// A done process blocked on its deferred 2PC commit can still
		// deadlock with an aborting process's completion; abort it too
		// (it restarts afterwards).
		for _, rt := range e.procs {
			if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
				continue
			}
			if rt.inst.Done() && len(rt.prepared) > 0 && e.pol.HasActiveConflictPred(e.view(), rt.id) {
				if victim == nil || rt.arrival > victim.arrival {
					victim = rt
				}
			}
		}
	}
	if victim == nil {
		return false
	}
	if e.cfg.DebugFirstStall && e.metrics.VictimAborts == 0 {
		fmt.Printf("FIRST STALL victim=%s\n%s\n", victim.id, e.stallDump())
	}
	e.metrics.VictimAborts++
	e.reg.Inc(metrics.VictimAborts)
	e.reg.Trace(metrics.TVictim, e.clock, string(victim.id), 0, "", "stall resolution")
	victim.restartable = true
	victim.abortPending = true
	return e.dispatchProc(victim)
}

// buildSchedule materializes the observed process schedule from the
// finalized events.
func (e *Engine) buildSchedule() *schedule.Schedule {
	return e.pol.BuildSchedule(e.allProcs)
}
