// Package policy implements the pure PRED scheduling decisions of the
// paper, factored out of any particular execution engine: the effective
// event history and process conflict graph, the forced-ordering context
// that maintains prefix-reducibility inductively, Lemma 1's commit
// deferral condition, the quasi-commit exploitation of Example 10, the
// Lemma 2/3 ordering of compensations and forward-recovery steps, and
// cascade-victim selection.
//
// Two engines share this layer: the sequential discrete-event engine
// (internal/scheduler) — the reference oracle — and the concurrent
// goroutine-per-process runtime (internal/runtime). The policy State is
// NOT internally synchronized: the sequential engine calls it from its
// single event loop, the concurrent runtime from within its serial
// section (all calls under the runtime mutex).
//
// Engine-dynamic facts (process phases, instances, queued recovery
// steps, in-flight invocations) are supplied through the View interface
// so that the decisions stay pure functions of the observable state.
package policy

import (
	"sort"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

// Mode selects the scheduling policy (mirrors the engine-level mode; the
// policy layer defines its own copy to stay import-cycle free).
type Mode int

const (
	// PRED is the paper's protocol in avoidance flavour.
	PRED Mode = iota
	// PREDCascade additionally allows compensatable activities to depend
	// on active backward-recoverable processes (the Figure 7 pattern).
	PREDCascade
	// Serial runs one process at a time (admission-level policy; every
	// per-activity dispatch is allowed).
	Serial
	// Conservative admits only non-conflicting footprints (admission
	// level; every per-activity dispatch is allowed).
	Conservative
	// CCOnly orders conflicts for serializability but ignores recovery.
	CCOnly
)

// Config parameterizes the decision rules.
type Config struct {
	Mode Mode
	// BlockPivots switches the PRED modes from "prepare and defer the
	// commit" to "do not even execute non-compensatable activities while
	// conflicting predecessors are active" (ablation mode).
	BlockPivots bool
}

// Phase is the policy-visible lifecycle state of a process.
type Phase int

const (
	// Running processes execute forward work (possibly with queued
	// forward-recovery steps after a non-fatal failure).
	Running Phase = iota
	// Aborting processes drain their completion C(P_i).
	Aborting
	// Done processes have terminated (committed or aborted).
	Done
)

// View supplies the per-process dynamic facts the pure decisions need.
// Implementations are engine-specific; all methods must be cheap and
// must tolerate ids the engine no longer tracks (report them Done).
type View interface {
	// Procs lists the admitted processes (any phase), in admission
	// order — decision iteration order follows it.
	Procs() []process.ID
	// Phase returns the lifecycle phase; Done for unknown ids.
	Phase(id process.ID) Phase
	// Arrival is the admission rank used for age-priority tie breaks.
	Arrival(id process.ID) int
	// Instance returns the process's instance for potential-service-set
	// queries; nil for unknown ids.
	Instance(id process.ID) *process.Instance
	// RecoverySteps returns the queued completion steps of the process
	// (compensations and forward invocations not yet executed).
	RecoverySteps(id process.ID) []process.Step
	// InFlight lists the services of the process's in-flight
	// invocations (issued, completion pending).
	InFlight(id process.ID) []string
}

// Event is one effective event in the observed history, used both for
// conflict-graph maintenance and to build the final observed schedule.
type Event struct {
	Seq     int64
	Proc    process.ID
	Local   int
	Service string
	// svc is the interned id of Service, assigned by AppendEvent (-1
	// for non-invocation events); the hot conflict scans run on it.
	svc     int
	Kind    activity.Kind
	Typ     schedule.EventType
	Inverse bool
	// Tentative marks prepared invocations whose commit is deferred;
	// they are erased if rolled back.
	Tentative bool
	Erased    bool
	// Compensated marks base invocations undone later (they stop
	// contributing conflict-graph edges).
	Compensated bool
	Committed   bool // Terminate events: regular C_i
	Group       []process.ID
}

// effective reports whether the event currently contributes
// conflict-graph edges.
func (ev *Event) effective() bool {
	return ev.Typ == schedule.Invoke && !ev.Erased && !ev.Compensated && !ev.Inverse
}

// State is the shared decision state: the event history, the process
// conflict graph with reference counts (edges to/from terminated
// processes included — history matters for serializability), and the
// interned conflict relation.
//
// In the sharded concurrent runtime one State exists per conflict
// shard; the States then share one frozen Universe and each observes
// only the events of its own shard (conflicting services always share
// a shard, so every conflict edge, forced ordering and Lemma gate is
// fully visible inside one State).
type State struct {
	cfg    Config
	u      *Universe
	events []*Event
	edges  map[[2]process.ID]int

	// forced-graph cache, invalidated whenever effective events, edges,
	// recovery queues or process states change (Bump).
	version     int64
	fctx        *forcedCtx
	fctxVersion int64

	// scratch buffers reused across decisions (a State is always driven
	// from one goroutine at a time — the engine loop or the shard lock
	// holder — so per-State scratch needs no synchronization).
	predScratch map[process.ID]bool
}

// New creates an empty decision state over a fixed conflict table,
// interning services lazily (single-threaded callers only).
func New(table *conflict.Table, cfg Config) *State {
	return newState(newLazyUniverse(table), cfg)
}

// NewShard creates a decision state over a shared frozen universe —
// the per-shard constructor of the concurrent runtime.
func NewShard(u *Universe, cfg Config) *State {
	return newState(u, cfg)
}

func newState(u *Universe, cfg Config) *State {
	return &State{
		cfg:         cfg,
		u:           u,
		edges:       make(map[[2]process.ID]int),
		predScratch: make(map[process.ID]bool),
	}
}

// Table returns the conflict table decisions are made under.
func (s *State) Table() *conflict.Table { return s.u.table }

// Universe returns the service-interning universe of the state.
func (s *State) Universe() *Universe { return s.u }

// Mode returns the configured policy mode.
func (s *State) Mode() Mode { return s.cfg.Mode }

// Bump invalidates the forced-graph cache; engines call it whenever
// View-visible state changes (admission, dispatch, completion, phase
// transitions).
func (s *State) Bump() { s.version++ }

// Conflicts is the interned front end to the conflict table.
func (s *State) Conflicts(a, b string) bool {
	return s.u.Conflicts(a, b)
}

// AppendEvent records an effective event (Seq set by the caller) and
// adds its conflict-graph edges against all earlier effective events.
// Inverse (compensating) events never contribute edges: the pair
// ⟨a a⁻¹⟩ is effect-free, and the Lemma-2 dispatch guard already
// verified no conflicting later work of another process exists before
// the compensation ran.
func (s *State) AppendEvent(ev *Event) {
	ev.svc = -1
	if ev.Typ == schedule.Invoke && ev.Service != "" {
		ev.svc = s.u.intern(ev.Service)
	}
	if ev.Typ == schedule.Invoke && !ev.Inverse {
		for _, old := range s.events {
			if !old.effective() || old.Proc == ev.Proc {
				continue
			}
			if s.u.conflictsID(old.svc, ev.svc) {
				s.addEdge(old.Proc, ev.Proc)
			}
		}
	}
	s.events = append(s.events, ev)
	s.Bump()
}

// Events exposes the raw history (for diagnostics and cascade
// decisions); callers must not mutate the returned slice.
func (s *State) Events() []*Event { return s.events }

func (s *State) addEdge(a, b process.ID) {
	if a == b {
		return
	}
	s.edges[[2]process.ID{a, b}]++
}

// removeEventEdges decrements the edges an event contributed when it is
// erased (rollback) or compensated.
func (s *State) removeEventEdges(ev *Event) {
	for _, old := range s.events {
		if old == ev || !old.effective() || old.Proc == ev.Proc {
			continue
		}
		if s.u.conflictsID(old.svc, ev.svc) {
			var key [2]process.ID
			if old.Seq < ev.Seq {
				key = [2]process.ID{old.Proc, ev.Proc}
			} else {
				key = [2]process.ID{ev.Proc, old.Proc}
			}
			if s.edges[key] > 0 {
				s.edges[key]--
			}
		}
	}
	s.Bump()
}

// EraseTentative erases the live tentative event of (proc, local) —
// a rolled-back prepared invocation — removing its edges. It reports
// whether an event was erased.
func (s *State) EraseTentative(proc process.ID, local int) bool {
	erased := false
	for _, ev := range s.events {
		if ev.Proc == proc && ev.Local == local && ev.Tentative && !ev.Erased {
			ev.Erased = true
			s.removeEventEdges(ev)
			erased = true
		}
	}
	return erased
}

// MarkCompensated marks the live base invocation of (proc, local) as
// compensated; it stops contributing conflict edges.
func (s *State) MarkCompensated(proc process.ID, local int) {
	for _, ev := range s.events {
		if ev.Proc == proc && ev.Local == local && !ev.Inverse && !ev.Compensated && !ev.Erased && ev.Typ == schedule.Invoke {
			ev.Compensated = true
			s.removeEventEdges(ev)
		}
	}
}

// FinalizeTentative commits a tentative event at 2PC time: the activity
// joins the observed schedule at its *commit* point, not its prepare
// point — a prefix cut between prepare and commit must not contain it
// (the subsystem's locks guarantee no conflicting activity ran in
// between, so moving it is conflict-order preserving). The event is
// re-sequenced to newSeq and moved to the end of the history.
func (s *State) FinalizeTentative(proc process.ID, local int, newSeq int64) bool {
	for i, ev := range s.events {
		if ev.Proc == proc && ev.Local == local && ev.Tentative && !ev.Erased {
			ev.Tentative = false
			ev.Seq = newSeq
			s.events = append(append(s.events[:i:i], s.events[i+1:]...), ev)
			s.Bump()
			return true
		}
	}
	return false
}

// BaseSeq returns the history sequence of the live (non-erased,
// non-compensated) base invocation of (proc, local), or 0 when none
// exists. It identifies the position T of Lemma 2's "activity executed
// at T".
func (s *State) BaseSeq(proc process.ID, local int) int64 {
	var seq int64
	for _, ev := range s.events {
		if ev.Proc == proc && ev.Local == local && ev.Typ == schedule.Invoke &&
			!ev.Inverse && !ev.Erased && !ev.Compensated {
			seq = ev.Seq
		}
	}
	return seq
}

// EdgeList returns the positive conflict-graph edges (diagnostics).
func (s *State) EdgeList() [][2]process.ID {
	out := make([][2]process.ID, 0, len(s.edges))
	for k, n := range s.edges {
		if n > 0 {
			out = append(out, k)
		}
	}
	return out
}

// BuildSchedule materializes the observed process schedule from the
// finalized events; it can be checked with PRED(), Serializable() and
// ProcessRecoverable().
func (s *State) BuildSchedule(procs []*process.Process) *schedule.Schedule {
	sched := schedule.MustNew(s.u.table.Clone())
	for _, p := range procs {
		if err := sched.AddProcess(p); err != nil {
			panic(err)
		}
	}
	for _, ev := range s.events {
		if ev.Erased || ev.Tentative {
			continue
		}
		sched.AppendUnchecked(schedule.Event{
			Type: ev.Typ, Proc: ev.Proc, Local: ev.Local, Service: ev.Service,
			Kind: ev.Kind, Inverse: ev.Inverse, Committed: ev.Committed, Group: ev.Group,
		})
	}
	return sched
}

// MergeSchedules materializes one observed schedule from several shard
// states' histories, interleaved by the engine's global sequence
// numbers. Events of different shards never conflict (conflicting
// services always share a shard), so any seq-consistent interleaving is
// conflict-equivalent; sorting by Seq reproduces the real-time order in
// which the engine finalized them.
func MergeSchedules(table *conflict.Table, procs []*process.Process, states []*State) *schedule.Schedule {
	sched := schedule.MustNew(table.Clone())
	for _, p := range procs {
		if err := sched.AddProcess(p); err != nil {
			panic(err)
		}
	}
	var evs []*Event
	for _, s := range states {
		for _, ev := range s.events {
			if ev.Erased || ev.Tentative {
				continue
			}
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	for _, ev := range evs {
		sched.AppendUnchecked(schedule.Event{
			Type: ev.Typ, Proc: ev.Proc, Local: ev.Local, Service: ev.Service,
			Kind: ev.Kind, Inverse: ev.Inverse, Committed: ev.Committed, Group: ev.Group,
		})
	}
	return sched
}
