package policy

import (
	"fmt"
	"sort"

	"transproc/internal/conflict"
)

// Universe interns service names into dense integer ids and memoizes
// the conflict relation as per-service bitsets, so the hot decision
// paths (forced-graph construction, conflict-predecessor scans, the
// Lemma gates) test conflicts with an index and a word-AND instead of
// hashing a pair of strings into a map.
//
// Two construction modes exist. NewUniverse builds a *frozen* universe
// eagerly from the full service list; it is immutable afterwards and
// therefore safe to share across the per-shard policy states of the
// concurrent runtime without locking. newLazyUniverse (used by
// policy.New for the single-threaded sequential engine) assigns ids on
// first sight and grows the masks incrementally; it must only be used
// under one lock.
type Universe struct {
	table  *conflict.Table
	frozen bool
	ids    map[string]int
	names  []string
	// masks[i] is the bitset of service ids conflicting with i (bit i
	// itself is set for self-conflicting services).
	masks [][]uint64
}

// NewUniverse builds a frozen universe over the given service names
// (duplicates are fine). The conflict relation is resolved eagerly
// through the table, including base-name mapping of compensations.
func NewUniverse(table *conflict.Table, services []string) *Universe {
	u := &Universe{
		table: table,
		ids:   make(map[string]int, len(services)),
	}
	for _, s := range services {
		u.intern(s)
	}
	u.frozen = true
	return u
}

func newLazyUniverse(table *conflict.Table) *Universe {
	return &Universe{table: table, ids: make(map[string]int)}
}

// Table returns the conflict table the universe resolves through.
func (u *Universe) Table() *conflict.Table { return u.table }

// intern assigns (or returns) the id of a service name, growing the
// conflict masks. Calling it on a frozen universe with an unknown name
// panics: the engines validate every job's services against the
// federation before running, so an unknown name here is a bug, and a
// silent fallback would mean silently wrong scheduling.
func (u *Universe) intern(name string) int {
	if id, ok := u.ids[name]; ok {
		return id
	}
	if u.frozen {
		panic(fmt.Sprintf("policy: service %q not in frozen universe", name))
	}
	id := len(u.names)
	u.ids[name] = id
	u.names = append(u.names, name)
	words := (id + 1 + 63) / 64
	row := make([]uint64, words)
	for other, otherID := range u.ids {
		if !u.table.Conflicts(name, other) {
			continue
		}
		row[otherID/64] |= 1 << (uint(otherID) % 64)
		if otherID != id {
			m := u.masks[otherID]
			for len(m)*64 <= id {
				m = append(m, 0)
			}
			m[id/64] |= 1 << (uint(id) % 64)
			u.masks[otherID] = m
		}
	}
	u.masks = append(u.masks, row)
	return id
}

// ID returns the interned id of a service, or -1 when unknown.
func (u *Universe) ID(name string) int {
	if id, ok := u.ids[name]; ok {
		return id
	}
	return -1
}

// Size returns the number of interned services.
func (u *Universe) Size() int { return len(u.names) }

// Conflicts reports whether two services conflict, by interned lookup
// when both names are known and through the table otherwise.
func (u *Universe) Conflicts(a, b string) bool {
	ia, oka := u.ids[a]
	ib, okb := u.ids[b]
	if oka && okb {
		return u.conflictsID(ia, ib)
	}
	return u.table.Conflicts(a, b)
}

// conflictsID tests the memoized relation on interned ids.
func (u *Universe) conflictsID(a, b int) bool {
	row := u.masks[a]
	if w := b / 64; w < len(row) {
		return row[w]&(1<<(uint(b)%64)) != 0
	}
	return false
}

// mask returns the conflict bitset of a service id; callers must not
// mutate it.
func (u *Universe) mask(id int) []uint64 { return u.masks[id] }

// anyBit reports whether the bitset has any bit set.
func anyBit(s []uint64) bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// intersects reports whether two bitsets share a set bit.
func intersects(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// setBit grows the bitset as needed and sets bit id.
func setBit(s []uint64, id int) []uint64 {
	for len(s)*64 <= id {
		s = append(s, 0)
	}
	s[id/64] |= 1 << (uint(id) % 64)
	return s
}

// Partition groups services into conflict shards: the connected
// components of the declared conflict relation. Two services in
// different shards never conflict, so processes whose footprints hit
// disjoint shard sets can be scheduled under disjoint locks without
// ever observing each other. Services that conflict with nothing (not
// even themselves) belong to no shard (ShardOf returns -1): they can
// never contribute a conflict edge, a forced ordering or a Lemma gate.
type Partition struct {
	shardOf map[string]int // base name -> shard id
	table   *conflict.Table
	n       int
}

// NewPartition computes the conflict shards of a table. The service
// list is only consulted for base-name resolution of names that never
// appear in a conflict pair; the components themselves derive from the
// declared pairs.
func NewPartition(table *conflict.Table) *Partition {
	pairs := table.Pairs()
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range pairs {
		union(p[0], p[1])
	}
	// Deterministic shard numbering: roots sorted by name.
	rootSet := make(map[string]bool)
	for x := range parent {
		rootSet[find(x)] = true
	}
	roots := make([]string, 0, len(rootSet))
	for r := range rootSet {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	rootID := make(map[string]int, len(roots))
	for i, r := range roots {
		rootID[r] = i
	}
	shardOf := make(map[string]int, len(parent))
	for x := range parent {
		shardOf[x] = rootID[find(x)]
	}
	return &Partition{shardOf: shardOf, table: table, n: len(roots)}
}

// Shards returns the number of conflict shards.
func (p *Partition) Shards() int { return p.n }

// ShardOf returns the shard of a service (resolved to its base name),
// or -1 when the service conflicts with nothing.
func (p *Partition) ShardOf(service string) int {
	if s, ok := p.shardOf[service]; ok {
		return s
	}
	base := p.table.Base(service)
	if s, ok := p.shardOf[base]; ok {
		return s
	}
	return -1
}

// ShardSet returns the sorted, deduplicated shard ids of a service
// footprint, appending into buf (pass buf[:0] to reuse an allocation).
// Conflict-free services contribute nothing.
func (p *Partition) ShardSet(footprint []string, buf []int) []int {
	out := buf
	for _, svc := range footprint {
		s := p.ShardOf(svc)
		if s < 0 {
			continue
		}
		seen := false
		for _, have := range out {
			if have == s {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
