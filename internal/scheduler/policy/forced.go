package policy

import (
	"transproc/internal/process"
)

// forcedCtx captures, for one dispatch round, the *forced* ordering
// edges of the completed current schedule: conflicts between surviving
// executed activities, and conflicts between a surviving executed
// activity and a potential completion activity of an active process
// (completion activities are appended after everything executed, so such
// a conflict forces the executed activity's process before the active
// one). Prefix-reducibility is maintained inductively by refusing any
// dispatch whose new forced edges would close a cycle — the operational
// form of "the completed process schedule S̃ has always to be considered"
// (Section 3.5).
type forcedCtx struct {
	s *State
	// pots maps each non-terminated process to the services its future
	// completions might still invoke. For running processes this is the
	// potential recovery set; for aborting processes the services of
	// their queued forward steps.
	pots map[process.ID]map[string]bool
	// bySvc indexes the surviving effective activities (executed and
	// not compensated/erased, plus in-flight invocations) by service:
	// service -> set of owning processes.
	bySvc map[string]map[process.ID]bool
	// edges is the forced edge set.
	edges map[[2]process.ID]bool
	// phase snapshots the view's phases at build time (for newEdges'
	// aborting-process exemption).
	phase map[process.ID]Phase
}

// forced returns the current round's forced-graph context, rebuilt when
// the state version moved since the cached one.
func (s *State) forced(v View) *forcedCtx {
	if s.fctx == nil || s.fctxVersion != s.version {
		s.fctx = s.newForcedCtx(v)
		s.fctxVersion = s.version
	}
	return s.fctx
}

// newForcedCtx builds the round context from the view.
func (s *State) newForcedCtx(v View) *forcedCtx {
	f := &forcedCtx{
		s:     s,
		pots:  make(map[process.ID]map[string]bool),
		bySvc: make(map[string]map[process.ID]bool),
		edges: make(map[[2]process.ID]bool),
		phase: make(map[process.ID]Phase),
	}
	procs := v.Procs()
	for _, id := range procs {
		ph := v.Phase(id)
		f.phase[id] = ph
		switch ph {
		case Running:
			if inst := v.Instance(id); inst != nil {
				f.pots[id] = inst.PotentialRecoveryServices()
			}
		case Aborting:
			set := make(map[string]bool)
			for _, st := range v.RecoverySteps(id) {
				if st.Kind == process.StepInvoke {
					set[st.Service] = true
				}
			}
			f.pots[id] = set
		}
	}
	add := func(proc process.ID, svc string) {
		set := f.bySvc[svc]
		if set == nil {
			set = make(map[process.ID]bool)
			f.bySvc[svc] = set
		}
		set[proc] = true
	}
	for _, ev := range s.events {
		if !ev.effective() {
			continue
		}
		add(ev.Proc, ev.Service)
	}
	// In-flight invocations participate as survivors: they will commit
	// (or vanish atomically) and their pending conflict edges must be
	// visible to concurrent dispatch decisions.
	for _, id := range procs {
		for _, svc := range v.InFlight(id) {
			add(id, svc)
		}
	}
	// Executed-executed edges.
	for k, n := range s.edges {
		if n > 0 {
			f.edges[k] = true
		}
	}
	// Executed-vs-potential-completion edges, computed per distinct
	// (survivor service, process potential) pair.
	for svc, owners := range f.bySvc {
		for q, pot := range f.pots {
			if !f.conflictsAny(pot, svc) {
				continue
			}
			for p := range owners {
				if p != q {
					f.edges[[2]process.ID{p, q}] = true
				}
			}
		}
	}
	return f
}

func (f *forcedCtx) conflictsAny(pot map[string]bool, service string) bool {
	for svc := range pot {
		if f.s.Conflicts(svc, service) {
			return true
		}
	}
	return false
}

// newEdges computes the forced edges a dispatch of service by proc would
// add. When the dispatch is a queued forward-recovery step, potential
// sets of other *aborting* processes do not force edges (the relative
// order of two queued forward steps is free and realized by actual
// execution order).
func (f *forcedCtx) newEdges(proc process.ID, service string, isStep bool) [][2]process.ID {
	var out [][2]process.ID
	for svc, owners := range f.bySvc {
		if !f.s.Conflicts(svc, service) {
			continue
		}
		for p := range owners {
			if p != proc {
				out = append(out, [2]process.ID{p, proc})
			}
		}
	}
	for q, pot := range f.pots {
		if q == proc {
			continue
		}
		if isStep && f.phase[q] == Aborting {
			continue
		}
		if f.conflictsAny(pot, service) {
			out = append(out, [2]process.ID{proc, q})
		}
	}
	return out
}

// ForcedEdgesFor exposes newEdges for diagnostics (stall dumps).
func (s *State) ForcedEdgesFor(v View, id process.ID, service string, isStep bool) [][2]process.ID {
	return s.forced(v).newEdges(id, service, isStep)
}

// acyclicWith reports whether none of the given new edges closes a
// cycle through itself in (base ∪ extra). The base contains
// conservative soft edges (conflicts with *potential* completions);
// such over-approximated edges may already form phantom cycles among
// other processes, which must not veto unrelated dispatches — only a
// cycle that the candidate's own edges participate in is a reason to
// deny.
func (f *forcedCtx) acyclicWith(extra [][2]process.ID) bool {
	if len(extra) == 0 {
		return true
	}
	adj := make(map[process.ID][]process.ID, len(f.edges)+len(extra))
	for k := range f.edges {
		if k[0] != k[1] {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	for _, k := range extra {
		if k[0] != k[1] {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	reaches := func(from, to process.ID) bool {
		stack := []process.ID{from}
		seen := map[process.ID]bool{}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for _, k := range extra {
		if k[0] == k[1] {
			continue
		}
		if reaches(k[1], k[0]) {
			return false
		}
	}
	return true
}

// acyclicWithActive is acyclicWith, but a cycle only counts when at
// least one process on the closing path satisfies isActive — cycles
// consisting entirely of terminated processes cannot be avoided by
// waiting.
func (f *forcedCtx) acyclicWithActive(extra [][2]process.ID, isActive func(process.ID) bool) bool {
	if len(extra) == 0 {
		return true
	}
	adj := make(map[process.ID][]process.ID, len(f.edges)+len(extra))
	for k := range f.edges {
		if k[0] != k[1] {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	for _, k := range extra {
		if k[0] != k[1] {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	for _, k := range extra {
		if k[0] == k[1] {
			continue
		}
		// BFS from k[1] to k[0]; remember whether any intermediate (or
		// the endpoints) are active.
		type node struct {
			id        process.ID
			sawActive bool
		}
		start := node{k[1], isActive(k[1]) || isActive(k[0])}
		stack := []node{start}
		best := make(map[process.ID]int) // 0 unseen, 1 seen-inactive, 2 seen-active
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			level := 1
			if n.sawActive {
				level = 2
			}
			if best[n.id] >= level {
				continue
			}
			best[n.id] = level
			if n.id == k[0] && n.sawActive {
				return false
			}
			for _, m := range adj[n.id] {
				stack = append(stack, node{m, n.sawActive || isActive(m)})
			}
		}
	}
	return true
}

// pathExists reports whether a forced path from a to b exists.
func (f *forcedCtx) pathExists(a, b process.ID) bool {
	stack := []process.ID{a}
	seen := make(map[process.ID]bool)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for k := range f.edges {
			if k[0] == n {
				stack = append(stack, k[1])
			}
		}
	}
	return false
}
