package policy

import (
	"transproc/internal/process"
)

// forcedCtx captures, for one dispatch round, the *forced* ordering
// edges of the completed current schedule: conflicts between surviving
// executed activities, and conflicts between a surviving executed
// activity and a potential completion activity of an active process
// (completion activities are appended after everything executed, so such
// a conflict forces the executed activity's process before the active
// one). Prefix-reducibility is maintained inductively by refusing any
// dispatch whose new forced edges would close a cycle — the operational
// form of "the completed process schedule S̃ has always to be considered"
// (Section 3.5).
//
// The context and its maps are reused across rebuilds (a State is
// driven from one goroutine at a time), and all conflict tests run on
// interned service ids and bitset masks.
type forcedCtx struct {
	s *State
	// pots maps each non-terminated process to the bitset of services
	// its future completions might still invoke. For running processes
	// this is the potential recovery set; for aborting processes the
	// services of their queued forward steps.
	pots map[process.ID][]uint64
	// bySvc indexes the surviving effective activities (executed and
	// not compensated/erased, plus in-flight invocations) by interned
	// service id: bySvc[svc] lists the owning processes (deduplicated).
	bySvc [][]process.ID
	// edges is the forced edge set.
	edges map[[2]process.ID]bool
	// phase snapshots the view's phases at build time (for newEdges'
	// aborting-process exemption).
	phase map[process.ID]Phase

	// adj is the adjacency form of edges, built lazily on the first
	// reachability query of the round.
	adj map[process.ID][]process.ID

	// per-query scratch.
	edgeBuf   [][2]process.ID
	stack     []process.ID
	seen      map[process.ID]bool
	maskAlloc []uint64 // bump allocator for pot masks
}

// forced returns the current round's forced-graph context, rebuilt when
// the state version moved since the cached one.
func (s *State) forced(v View) *forcedCtx {
	if s.fctx == nil || s.fctxVersion != s.version {
		s.fctx = s.newForcedCtx(v)
		s.fctxVersion = s.version
	}
	return s.fctx
}

// newForcedCtx builds the round context from the view, reusing the
// previous round's allocations.
func (s *State) newForcedCtx(v View) *forcedCtx {
	f := s.fctx
	if f == nil {
		f = &forcedCtx{
			s:     s,
			pots:  make(map[process.ID][]uint64),
			edges: make(map[[2]process.ID]bool),
			phase: make(map[process.ID]Phase),
			seen:  make(map[process.ID]bool),
		}
	} else {
		clear(f.pots)
		clear(f.edges)
		clear(f.phase)
		f.adj = nil
	}
	for i := range f.bySvc {
		f.bySvc[i] = f.bySvc[i][:0]
	}
	f.maskAlloc = f.maskAlloc[:0]

	procs := v.Procs()
	words := (s.u.Size() + 63) / 64
	for _, id := range procs {
		ph := v.Phase(id)
		f.phase[id] = ph
		switch ph {
		case Running:
			if inst := v.Instance(id); inst != nil {
				f.pots[id] = f.newMask(inst.PotentialRecoveryServices(), words)
			}
		case Aborting:
			m := f.blankMask(words)
			for _, st := range v.RecoverySteps(id) {
				if st.Kind == process.StepInvoke {
					m = setBit(m, s.u.intern(st.Service))
				}
			}
			f.pots[id] = m
		}
	}
	for _, ev := range s.events {
		if !ev.effective() {
			continue
		}
		f.addSurvivor(ev.Proc, ev.svc)
	}
	// In-flight invocations participate as survivors: they will commit
	// (or vanish atomically) and their pending conflict edges must be
	// visible to concurrent dispatch decisions.
	for _, id := range procs {
		for _, svc := range v.InFlight(id) {
			f.addSurvivor(id, s.u.intern(svc))
		}
	}
	// Executed-executed edges.
	for k, n := range s.edges {
		if n > 0 {
			f.edges[k] = true
		}
	}
	// Executed-vs-potential-completion edges, computed per distinct
	// (survivor service, process potential) pair.
	for svc, owners := range f.bySvc {
		if len(owners) == 0 {
			continue
		}
		mask := s.u.mask(svc)
		for q, pot := range f.pots {
			if !intersects(pot, mask) {
				continue
			}
			for _, p := range owners {
				if p != q {
					f.edges[[2]process.ID{p, q}] = true
				}
			}
		}
	}
	return f
}

// blankMask hands out a zeroed bitset of the given word count from the
// round's bump allocator.
func (f *forcedCtx) blankMask(words int) []uint64 {
	n := len(f.maskAlloc)
	if cap(f.maskAlloc)-n < words {
		f.maskAlloc = make([]uint64, 0, 64+words)
		n = 0
	}
	f.maskAlloc = f.maskAlloc[:n+words]
	m := f.maskAlloc[n : n+words : n+words]
	for i := range m {
		m[i] = 0
	}
	return m
}

// newMask interns a service-name set into a bitset.
func (f *forcedCtx) newMask(set map[string]bool, words int) []uint64 {
	m := f.blankMask(words)
	for svc := range set {
		m = setBit(m, f.s.u.intern(svc))
	}
	return m
}

// addSurvivor records a surviving effective activity owner under its
// service id, deduplicating owners.
func (f *forcedCtx) addSurvivor(proc process.ID, svc int) {
	for len(f.bySvc) <= svc {
		f.bySvc = append(f.bySvc, nil)
	}
	owners := f.bySvc[svc]
	for _, p := range owners {
		if p == proc {
			return
		}
	}
	f.bySvc[svc] = append(owners, proc)
}

// newEdges computes the forced edges a dispatch of service by proc would
// add. When the dispatch is a queued forward-recovery step, potential
// sets of other *aborting* processes do not force edges (the relative
// order of two queued forward steps is free and realized by actual
// execution order). The returned slice is scratch, valid until the next
// newEdges call on this context.
func (f *forcedCtx) newEdges(proc process.ID, svcID int, isStep bool) [][2]process.ID {
	out := f.edgeBuf[:0]
	mask := f.s.u.mask(svcID)
	for svc, owners := range f.bySvc {
		if len(owners) == 0 {
			continue
		}
		if w := svc / 64; w >= len(mask) || mask[w]&(1<<(uint(svc)%64)) == 0 {
			continue
		}
		for _, p := range owners {
			if p != proc {
				out = append(out, [2]process.ID{p, proc})
			}
		}
	}
	for q, pot := range f.pots {
		if q == proc {
			continue
		}
		if isStep && f.phase[q] == Aborting {
			continue
		}
		if intersects(pot, mask) {
			out = append(out, [2]process.ID{proc, q})
		}
	}
	f.edgeBuf = out
	return out
}

// ForcedEdgesFor exposes newEdges for diagnostics (stall dumps); the
// result is a copy safe to retain.
func (s *State) ForcedEdgesFor(v View, id process.ID, service string, isStep bool) [][2]process.ID {
	fc := s.forced(v)
	edges := fc.newEdges(id, s.u.intern(service), isStep)
	out := make([][2]process.ID, len(edges))
	copy(out, edges)
	return out
}

// ensureAdj materializes the adjacency form of the forced edges.
func (f *forcedCtx) ensureAdj() {
	if f.adj != nil {
		return
	}
	f.adj = make(map[process.ID][]process.ID, len(f.edges))
	for k := range f.edges {
		if k[0] != k[1] {
			f.adj[k[0]] = append(f.adj[k[0]], k[1])
		}
	}
}

// reaches reports whether `to` is reachable from `from` over the forced
// edges plus the extra edge list.
func (f *forcedCtx) reaches(from, to process.ID, extra [][2]process.ID) bool {
	f.ensureAdj()
	clear(f.seen)
	stack := append(f.stack[:0], from)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			f.stack = stack
			return true
		}
		if f.seen[n] {
			continue
		}
		f.seen[n] = true
		stack = append(stack, f.adj[n]...)
		for _, k := range extra {
			if k[0] == n && k[1] != n {
				stack = append(stack, k[1])
			}
		}
	}
	f.stack = stack
	return false
}

// acyclicWith reports whether none of the given new edges closes a
// cycle through itself in (base ∪ extra). The base contains
// conservative soft edges (conflicts with *potential* completions);
// such over-approximated edges may already form phantom cycles among
// other processes, which must not veto unrelated dispatches — only a
// cycle that the candidate's own edges participate in is a reason to
// deny.
func (f *forcedCtx) acyclicWith(extra [][2]process.ID) bool {
	if len(extra) == 0 {
		return true
	}
	for _, k := range extra {
		if k[0] == k[1] {
			continue
		}
		if f.reaches(k[1], k[0], extra) {
			return false
		}
	}
	return true
}

// acyclicWithActive is acyclicWith, but a cycle only counts when at
// least one process on the closing path satisfies isActive — cycles
// consisting entirely of terminated processes cannot be avoided by
// waiting.
func (f *forcedCtx) acyclicWithActive(extra [][2]process.ID, isActive func(process.ID) bool) bool {
	if len(extra) == 0 {
		return true
	}
	f.ensureAdj()
	neighbors := func(n process.ID, visit func(process.ID)) {
		for _, m := range f.adj[n] {
			visit(m)
		}
		for _, k := range extra {
			if k[0] == n && k[1] != n {
				visit(k[1])
			}
		}
	}
	for _, k := range extra {
		if k[0] == k[1] {
			continue
		}
		// DFS from k[1] to k[0]; remember whether any intermediate (or
		// the endpoints) are active.
		type node struct {
			id        process.ID
			sawActive bool
		}
		start := node{k[1], isActive(k[1]) || isActive(k[0])}
		stack := []node{start}
		best := make(map[process.ID]int) // 0 unseen, 1 seen-inactive, 2 seen-active
		closed := false
		for len(stack) > 0 && !closed {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			level := 1
			if n.sawActive {
				level = 2
			}
			if best[n.id] >= level {
				continue
			}
			best[n.id] = level
			if n.id == k[0] && n.sawActive {
				closed = true
				break
			}
			neighbors(n.id, func(m process.ID) {
				stack = append(stack, node{m, n.sawActive || isActive(m)})
			})
		}
		if closed {
			return false
		}
	}
	return true
}

// pathExists reports whether a forced path from a to b exists.
func (f *forcedCtx) pathExists(a, b process.ID) bool {
	return f.reaches(a, b, nil)
}
