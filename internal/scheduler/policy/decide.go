package policy

import (
	"fmt"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

// HasActiveConflictPred reports whether any non-terminated process has
// an edge into id in the conflict graph — Lemma 1's commit-deferral
// condition.
func (s *State) HasActiveConflictPred(v View, id process.ID) bool {
	for k, n := range s.edges {
		if n <= 0 || k[1] != id {
			continue
		}
		if v.Phase(k[0]) != Done {
			return true
		}
	}
	return false
}

// ActiveConflictPreds lists the non-terminated processes with an edge
// into id — the processes a Lemma-1 commit deferral is waiting on. The
// deferral resolves only when all of them terminated, so the list is
// the AND-set of one wait-for alternative in the runtime's deadlock
// detector.
func (s *State) ActiveConflictPreds(v View, id process.ID) []process.ID {
	var out []process.ID
	for k, n := range s.edges {
		if n <= 0 || k[1] != id {
			continue
		}
		if v.Phase(k[0]) != Done {
			out = append(out, k[0])
		}
	}
	return out
}

// DispatchBlockers lists the active predecessors on which MayDispatch's
// Lemma-1 loop would deny a regular dispatch of a by id: the processes
// that must all terminate (or become exempt by acting) before the
// activity can run. An empty result means the denial — if any — came
// from a rule without pred-wait semantics (forced-order acyclicity, the
// ablation pivot gate, or a non-PRED mode), so the caller has no edge
// information and must fall back to quiescence-based stall handling.
func (s *State) DispatchBlockers(v View, id process.ID, a *process.Activity) []process.ID {
	switch s.cfg.Mode {
	case Serial, Conservative, CCOnly:
		return nil
	}
	svcID := s.u.intern(a.Service)
	if !anyBit(s.u.mask(svcID)) {
		return nil
	}
	var out []process.ID
	for q := range s.conflictPreds(v, id, svcID) {
		if v.Phase(q) == Done {
			continue
		}
		if s.safeQuasiCommit(v, q, svcID) {
			continue
		}
		if s.cfg.Mode == PREDCascade && a.Kind == activity.Compensatable && v.Phase(q) == Running &&
			v.Arrival(q) <= v.Arrival(id) && !s.forwardConflict(v, q, a.Service) {
			continue
		}
		out = append(out, q)
	}
	return out
}

// FirstActivePred names one active conflicting predecessor of id — the
// process a deferred commit is waiting on (trace detail for the
// defer-commit decision). Which one is named is arbitrary when several
// exist; "" when none.
func (s *State) FirstActivePred(v View, id process.ID) string {
	for k, n := range s.edges {
		if n <= 0 || k[1] != id {
			continue
		}
		if v.Phase(k[0]) != Done {
			return string(k[0])
		}
	}
	return ""
}

// wouldCycle reports whether adding edges from the given predecessors to
// `to` closes a cycle in the conflict graph.
func (s *State) wouldCycle(preds map[process.ID]bool, to process.ID) bool {
	// DFS from `to` over positive edges; if we reach any pred, the new
	// edge pred->to closes a cycle.
	stack := []process.ID{to}
	seen := map[process.ID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n != to && preds[n] {
			return true
		}
		for k, cnt := range s.edges {
			if cnt > 0 && k[0] == n {
				stack = append(stack, k[1])
			}
		}
	}
	return false
}

// conflictPreds returns, for a prospective activity of id, the set of
// processes with an earlier effective conflicting event (executed or in
// flight). The returned map is scratch, valid until the next
// conflictPreds call on this state.
func (s *State) conflictPreds(v View, id process.ID, svcID int) map[process.ID]bool {
	preds := s.predScratch
	clear(preds)
	fc := s.forced(v)
	mask := s.u.mask(svcID)
	for svc, owners := range fc.bySvc {
		if len(owners) == 0 {
			continue
		}
		if w := svc / 64; w >= len(mask) || mask[w]&(1<<(uint(svc)%64)) == 0 {
			continue
		}
		for _, p := range owners {
			if p != id {
				preds[p] = true
			}
		}
	}
	return preds
}

// MayDispatch implements the per-activity scheduling rules for a regular
// (non-recovery) invocation of the given activity by process id. When
// denied, the returned string names the rule.
func (s *State) MayDispatch(v View, id process.ID, a *process.Activity) (bool, string) {
	switch s.cfg.Mode {
	case Serial, Conservative:
		return true, "" // admission already serialized conflicts
	}
	svcID := s.u.intern(a.Service)
	// Conflict-free services can never gain predecessors, force an
	// ordering or close a cycle — only the ablation-mode pivot gate can
	// still apply. This skips the forced-context machinery entirely for
	// the commutative bulk of a workload.
	if !anyBit(s.u.mask(svcID)) {
		if s.cfg.Mode != CCOnly && s.cfg.BlockPivots && a.Kind.NonCompensatable() && s.HasActiveConflictPred(v, id) {
			return false, "pivot blocked until predecessors terminate (ablation mode)"
		}
		return true, ""
	}
	preds := s.conflictPreds(v, id, svcID)
	if s.cfg.Mode == CCOnly {
		if len(preds) == 0 {
			return true, ""
		}
		if s.wouldCycle(preds, id) {
			return false, "serializability: edge would close a cycle"
		}
		return true, ""
	}
	// PRED modes: dependencies on active processes are restricted.
	for q := range preds {
		if v.Phase(q) == Done {
			continue
		}
		if s.safeQuasiCommit(v, q, svcID) {
			continue
		}
		if s.cfg.Mode == PREDCascade && a.Kind == activity.Compensatable && v.Phase(q) == Running &&
			v.Arrival(q) <= v.Arrival(id) && !s.forwardConflict(v, q, a.Service) {
			// Figure-7 pattern: a compensatable activity may depend on
			// an active process — if that process unwinds, the
			// dependent is cascade-aborted first (Lemma 2 order). Two
			// guards keep this from wedging: none of the predecessor's
			// still-uncommitted services may conflict (a conflicting
			// forward-recovery activity could not be cancelled, and a
			// conflicting regular activity would later be blocked by
			// *our* new survivor, wedging the predecessor behind its
			// own follower); and dependencies may only point from older
			// to younger processes (age priority), keeping the
			// wait-for relation among deferred commits acyclic.
			continue
		}
		return false, fmt.Sprintf("recovery: depends on active process %s (Lemma 1)", q)
	}
	// The dispatch must keep the forced ordering graph of the completed
	// current schedule acyclic (prefix-reducibility, maintained
	// inductively).
	fc := s.forced(v)
	if !fc.acyclicWith(fc.newEdges(id, svcID, false)) {
		return false, "completed-schedule ordering would become cyclic"
	}
	if s.cfg.BlockPivots && a.Kind.NonCompensatable() && s.HasActiveConflictPred(v, id) {
		return false, "pivot blocked until predecessors terminate (ablation mode)"
	}
	return true, ""
}

// safeQuasiCommit reports whether q can no longer produce a recovery
// activity conflicting with the service: q is forward-recoverable and
// none of its potential recovery services conflicts (Example 10). The
// potential set is read from the round's forced context (same state
// version, so it is current).
func (s *State) safeQuasiCommit(v View, q process.ID, svcID int) bool {
	inst := v.Instance(q)
	if v.Phase(q) != Running || inst == nil || inst.Mode() != process.FREC {
		return false
	}
	return !intersects(s.forced(v).pots[q], s.u.mask(svcID))
}

// forwardConflict reports whether q's potential forward recovery
// services conflict with the given service.
func (s *State) forwardConflict(v View, q process.ID, service string) bool {
	inst := v.Instance(q)
	if inst == nil {
		return false
	}
	for svc := range inst.PotentialForwardServices() {
		if s.u.Conflicts(svc, service) {
			return true
		}
	}
	return false
}

// Lemma1ClearForward gates a forward-recovery invocation (StepInvoke):
// it must not conflict-follow an effective activity of an active
// process that could still need a conflicting recovery of its own
// (the "arbitrary conflicts can be introduced to S̃" hazard of
// Section 3.5). Aborting processes are waited for only through their
// queued compensations (Lemma3Clear); their remaining forward paths
// merely order against ours.
func (s *State) Lemma1ClearForward(v View, id process.ID, st process.Step) bool {
	svcID := s.u.intern(st.Service)
	if !anyBit(s.u.mask(svcID)) {
		return true
	}
	for q := range s.conflictPreds(v, id, svcID) {
		if ph := v.Phase(q); ph == Done || ph == Aborting {
			continue
		}
		if !s.safeQuasiCommit(v, q, svcID) {
			return false
		}
	}
	return true
}

// Lemma2Clear enforces the cross-process reverse order of compensations:
// the compensation of an activity executed at sequence T must wait while
// another active process still has effective conflicting work executed
// after T (that process compensates first — it is cascading).
func (s *State) Lemma2Clear(v View, id process.ID, st process.Step) bool {
	svcID := s.u.intern(st.Service)
	if !anyBit(s.u.mask(svcID)) {
		return true
	}
	baseSeq := s.BaseSeq(id, st.Local)
	for _, ev := range s.events {
		if ev.Proc == id || !ev.effective() {
			continue
		}
		if ev.Seq <= baseSeq {
			continue
		}
		if v.Phase(ev.Proc) == Done {
			continue
		}
		if s.u.conflictsID(ev.svc, svcID) {
			return false
		}
	}
	return true
}

// Lemma3Clear defers a forward-recovery invocation while another active
// process has a conflicting compensation still queued: compensations
// precede conflicting retriable activities in the completion (Lemma 3).
func (s *State) Lemma3Clear(v View, id process.ID, st process.Step) bool {
	if !anyBit(s.u.mask(s.u.intern(st.Service))) {
		return true
	}
	for _, o := range v.Procs() {
		if o == id || v.Phase(o) == Done {
			continue
		}
		for _, os := range v.RecoverySteps(o) {
			if os.Kind == process.StepCompensate && s.u.Conflicts(os.Service, st.Service) {
				return false
			}
		}
	}
	return true
}

// StepForcedClear checks a forward-recovery step against the forced
// ordering graph: wait while the step's new edges close a cycle that
// waiting can still break (some process on the cycle path is active). A
// cycle whose other participants already terminated cannot be avoided —
// the completion step must run eventually, so it proceeds.
func (s *State) StepForcedClear(v View, id process.ID, st process.Step) bool {
	svcID := s.u.intern(st.Service)
	if !anyBit(s.u.mask(svcID)) {
		return true
	}
	fc := s.forced(v)
	return fc.acyclicWithActive(fc.newEdges(id, svcID, true), func(q process.ID) bool {
		return v.Phase(q) != Done
	})
}

// DeferToAborting defers a forward-recovery step to aborting processes
// whose queued conflicting forward steps are forced before ours. When
// forced paths exist in both directions (over-approximated soft edges),
// the tie breaks by age then id, so exactly one side proceeds and the
// mutual wait cannot deadlock. It returns the process deferred to, if
// any.
func (s *State) DeferToAborting(v View, id process.ID, st process.Step) (process.ID, bool) {
	if !anyBit(s.u.mask(s.u.intern(st.Service))) {
		return "", false
	}
	fc := s.forced(v)
	for _, o := range v.Procs() {
		if o == id || v.Phase(o) != Aborting {
			continue
		}
		for _, os := range v.RecoverySteps(o) {
			if os.Kind != process.StepInvoke || !s.u.Conflicts(os.Service, st.Service) {
				continue
			}
			if !fc.pathExists(o, id) {
				continue
			}
			if fc.pathExists(id, o) {
				// Mutual: older (or lower id) goes first.
				if v.Arrival(id) < v.Arrival(o) || (v.Arrival(id) == v.Arrival(o) && id < o) {
					continue
				}
			}
			return o, true
		}
	}
	return "", false
}

// CascadeVictims selects the running processes that must cascade-abort
// when `of` aborts and will compensate conflicting work (PREDCascade
// mode): a dependent q cascades only if it holds effective
// (uncompensated) work that conflicts with one of of's upcoming
// compensations and was executed *after* the compensated base — only
// then would the base's compensation pair be blocked (Lemma 2 demands
// q's conflicting work unwinds first). Callers filter processes whose
// abort is already pending.
func (s *State) CascadeVictims(v View, of process.ID, recovery []process.Step) []process.ID {
	if s.cfg.Mode != PREDCascade {
		return nil
	}
	// Which bases will `of` compensate, and from which position on?
	type comp struct {
		svcID   int
		baseSeq int64
	}
	comps := make([]comp, 0, len(recovery))
	for _, st := range recovery {
		if st.Kind == process.StepCompensate {
			comps = append(comps, comp{s.u.intern(st.Service), s.BaseSeq(of, st.Local)})
		}
	}
	if len(comps) == 0 {
		return nil
	}
	var victims []process.ID
	for k, n := range s.edges {
		if n <= 0 || k[0] != of {
			continue
		}
		q := k[1]
		if v.Phase(q) != Running {
			continue
		}
		depends := false
		for _, ev := range s.events {
			if ev.Proc != q || !ev.effective() {
				continue
			}
			for _, c := range comps {
				if ev.Seq > c.baseSeq && s.u.conflictsID(ev.svc, c.svcID) {
					depends = true
					break
				}
			}
			if depends {
				break
			}
		}
		if depends {
			victims = append(victims, q)
		}
	}
	return victims
}

// String renders one effective-history line (diagnostics).
func (ev *Event) String() string {
	if ev.Typ != schedule.Invoke {
		return fmt.Sprintf("seq=%d %s %v", ev.Seq, ev.Proc, ev.Typ)
	}
	return fmt.Sprintf("seq=%d %s/%d %s inv=%v tent=%v comp=%v erased=%v",
		ev.Seq, ev.Proc, ev.Local, ev.Service, ev.Inverse, ev.Tentative, ev.Compensated, ev.Erased)
}
