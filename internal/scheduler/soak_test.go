package scheduler_test

import (
	"fmt"
	"testing"

	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// TestProtocolSoak sweeps generated workloads across modes, conflict
// rates and failure rates, asserting the central protocol invariant:
// every schedule produced by a PRED-family scheduler is
// prefix-reducible, and every run terminates every process. With
// -short the sweep shrinks.
func TestProtocolSoak(t *testing.T) {
	seeds := int64(24)
	if testing.Short() {
		seeds = 4
	}
	modes := []scheduler.Mode{
		scheduler.PRED, scheduler.PREDCascade, scheduler.Serial,
		scheduler.Conservative, scheduler.CCOnly,
	}
	for _, mode := range modes {
		for _, conflictProb := range []float64{0.2, 0.5, 0.8} {
			for _, failProb := range []float64{0.0, 0.1, 0.25} {
				name := fmt.Sprintf("%v/c%.1f/f%.2f", mode, conflictProb, failProb)
				t.Run(name, func(t *testing.T) {
					for seed := int64(1); seed <= seeds; seed++ {
						p := workload.DefaultProfile(seed)
						p.Processes = 8
						p.ConflictProb = conflictProb
						p.PermFailureProb = failProb
						w := workload.MustGenerate(p)
						eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode})
						if err != nil {
							t.Fatal(err)
						}
						res, err := eng.RunJobs(w.Jobs)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
							t.Fatalf("seed %d: only %d of %d processes terminated", seed, got, p.Processes)
						}
						if mode == scheduler.CCOnly {
							continue // no PRED guarantee by design
						}
						ok, at, _, err := res.Schedule.PRED()
						if err != nil {
							t.Fatalf("seed %d: PRED check: %v", seed, err)
						}
						if !ok {
							t.Fatalf("seed %d: non-PRED schedule (prefix %d):\n%s", seed, at, res.Schedule)
						}
					}
				})
			}
		}
	}
}

// TestSoakEffectConsistency verifies guaranteed termination end to end:
// after every run, each process either committed (its effects present)
// or aborted effect-free/forward-complete — concretely, no data item may
// ever go negative, and the number of in-doubt transactions must be
// zero. With -short the sweep shrinks.
func TestSoakEffectConsistency(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 10
		p.ConflictProb = 0.5
		p.PermFailureProb = 0.15
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunJobs(w.Jobs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions after completion", seed, n)
		}
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("seed %d: item %s went negative (%d): compensation applied without its base", seed, item, v)
			}
		}
	}
}
