package scheduler_test

import (
	"errors"
	"path/filepath"
	"testing"

	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/spec"
	"transproc/internal/store"
	"transproc/internal/subsystem"
	"transproc/internal/workload"
)

// attachFileStores opens one heap file per subsystem under dir and
// attaches it, mirroring what a durable deployment does at boot.
func attachFileStores(t *testing.T, fed *subsystem.Federation, dir string) {
	t.Helper()
	for _, sub := range fed.Subsystems() {
		st, err := store.OpenFile(filepath.Join(dir, sub.Name()+".pages"), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.AttachStore(st); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverDurableAfterCrash crashes a durable run at a sweep of
// points and recovers page state and scheduler state together: the
// reopened stores may be stale (dirty pages dropped at the crash),
// and RecoverDurable must reconcile them against the log before the
// composed recovery runs. After recovery: no in-doubt transactions,
// no negative data items (a compensation never applies without its
// base), and the stores flush and verify cleanly.
func TestRecoverDurableAfterCrash(t *testing.T) {
	for k := 2; k <= 22; k += 2 {
		dir := t.TempDir()
		p := workload.DefaultProfile(int64(300 + k))
		p.Processes = 6
		p.ConflictProb = 0.5
		p.PermFailureProb = 0.2
		w := workload.MustGenerate(p)
		attachFileStores(t, w.Fed, dir)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED, CrashAfterEvents: k})
		if err != nil {
			t.Fatal(err)
		}
		if _, err = eng.RunJobs(w.Jobs); err == nil {
			continue // run finished before the crash point
		} else if !errors.Is(err, scheduler.ErrCrashed) {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Crash: dirty pool pages are dropped; only flushed pages survive.
		for _, sub := range w.Fed.Subsystems() {
			sub.DurableStore().Abandon()
		}

		// Restart: a fresh federation (same generator) reopens the files.
		w2 := workload.MustGenerate(p)
		attachFileStores(t, w2.Fed, dir)
		defs := make([]*process.Process, 0, len(w2.Jobs))
		for _, j := range w2.Jobs {
			defs = append(defs, j.Proc)
		}
		rep, err := scheduler.RecoverDurable(w2.Fed, eng.Log(), defs, nil)
		if err != nil {
			t.Fatalf("k=%d: RecoverDurable: %v", k, err)
		}
		if rep.RecoveryReport == nil {
			t.Fatalf("k=%d: missing composed recovery report", k)
		}
		if n := len(w2.Fed.InDoubt()); n != 0 {
			t.Fatalf("k=%d: %d in-doubt transactions after durable recovery", k, n)
		}
		for item, v := range w2.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("k=%d: item %s negative after durable recovery (%d)", k, item, v)
			}
		}
		for _, sub := range w2.Fed.Subsystems() {
			if _, err := sub.FlushStore(); err != nil {
				t.Fatalf("k=%d: flush %s: %v", k, sub.Name(), err)
			}
			st := sub.DurableStore()
			if _, err := st.VerifyDisk(); err != nil {
				t.Fatalf("k=%d: %s pages fail verification: %v", k, sub.Name(), err)
			}
			if err := st.CheckConsistency(); err != nil {
				t.Fatalf("k=%d: %s inconsistent: %v", k, sub.Name(), err)
			}
		}
	}
}

// TestRecoverDurableWithoutStores is the delegation path: with no store
// attached anywhere, RecoverDurable is exactly the composed recovery.
func TestRecoverDurableWithoutStores(t *testing.T) {
	fed := paper.Federation(41)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED, CrashAfterEvents: 5})
	procs := []*process.Process{paper.P1(), paper.P2()}
	if _, err := eng.Run(procs); !errors.Is(err, scheduler.ErrCrashed) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	rep, err := scheduler.RecoverDurable(fed, eng.Log(), procs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoredInDoubt != 0 || rep.RedoItems != 0 || rep.UndoItems != 0 || rep.FlushedPages != 0 {
		t.Fatalf("page-level phase must be a no-op without stores: %+v", rep)
	}
	if rep.RecoveryReport == nil {
		t.Fatal("composed recovery must still run")
	}
}

// TestRecoverDurableCleanRun recovers a durable log with nothing to do:
// every process terminated before the "crash". The page image must
// already match the log and survive reconciliation untouched.
func TestRecoverDurableCleanRun(t *testing.T) {
	dir := t.TempDir()
	p := workload.DefaultProfile(55)
	p.Processes = 4
	p.ConflictProb = 0.3
	w := workload.MustGenerate(p)
	attachFileStores(t, w.Fed, dir)
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunJobs(w.Jobs); err != nil {
		t.Fatal(err)
	}
	for _, sub := range w.Fed.Subsystems() {
		if _, err := sub.FlushStore(); err != nil {
			t.Fatal(err)
		}
		sub.DurableStore().Abandon()
	}
	w2 := workload.MustGenerate(p)
	attachFileStores(t, w2.Fed, dir)
	defs := make([]*process.Process, 0, len(w2.Jobs))
	for _, j := range w2.Jobs {
		defs = append(defs, j.Proc)
	}
	rep, err := scheduler.RecoverDurable(w2.Fed, eng.Log(), defs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoItems != 0 || rep.UndoItems != 0 {
		t.Fatalf("flushed clean image must not need redo/undo: %+v", rep)
	}
	if got, want := w2.Fed.Snapshot(), w.Fed.Snapshot(); len(got) != len(want) {
		t.Fatalf("snapshot size diverged: %d vs %d", len(got), len(want))
	} else {
		for item, v := range want {
			if got[item] != v {
				t.Fatalf("item %s: recovered %d, want %d", item, got[item], v)
			}
		}
	}
}

// TestOriginStripsRestartSuffixes pins the subsystem-identity rule:
// every restart incarnation maps back to the admitted origin id.
func TestOriginStripsRestartSuffixes(t *testing.T) {
	for in, want := range map[process.ID]process.ID{
		"P1":          "P1",
		"P1+r2":       "P1",
		"P1+r2+r1":    "P1",
		"t0/W3+r1":    "t0/W3",
		"t0/W3+r1+r4": "t0/W3",
	} {
		if got := scheduler.Origin(in); got != want {
			t.Fatalf("Origin(%q) = %q, want %q", in, got, want)
		}
	}
}

// cascadeWorld builds a deterministic cascade scenario: P1 writes x
// compensatably and then fails its pivot; P2 reads x after P1 (a
// cascading dependency in PREDCascade mode) and is still busy with a
// long activity when P1 begins to abort — so P2 must be cascade-aborted
// and its compensation must run before P1's (Lemma 2 order).
func cascadeWorld(t *testing.T) (*subsystem.Federation, []scheduler.Job) {
	t.Helper()
	f := &spec.File{
		Subsystems: []spec.SubsystemSpec{
			{Name: "s1", Seed: 1, Services: []spec.ServiceSpec{
				{Name: "writeX", Kind: "compensatable", Writes: []string{"x"}, Cost: 1},
				{Name: "readX", Kind: "compensatable", Writes: []string{"x"}, Cost: 1},
			}},
			{Name: "s2", Seed: 2, Services: []spec.ServiceSpec{
				{Name: "gate", Kind: "pivot", Writes: []string{"p"}, Cost: 6},
			}},
			{Name: "s3", Seed: 3, Services: []spec.ServiceSpec{
				{Name: "slow", Kind: "compensatable", Writes: []string{"z"}, Cost: 30},
			}},
		},
		Processes: []spec.ProcessSpec{
			{ID: "P1", Activities: []spec.ActivitySpec{
				{Local: 1, Service: "writeX"},
				{Local: 2, Service: "gate"},
			}, Seq: [][2]int{{1, 2}}},
			// P2 arrives once writeX has executed but while P1 is still
			// running its pivot, so the dependency points old -> young
			// as the cascade rule requires.
			{ID: "P2", Arrival: 1, Activities: []spec.ActivitySpec{
				{Local: 1, Service: "readX"},
				{Local: 2, Service: "slow"},
			}, Seq: [][2]int{{1, 2}}},
		},
	}
	fed, jobs, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	return fed, jobs
}

// TestCascadeModeDefersFigure7Dependency pins how PREDCascade handles
// the Figure-7 geometry today: the dependency P2 would need on P1 is
// permitted by the cascade rule itself but refused by the forced-graph
// acyclicity check, because P2's readX conflicts both with P1's
// executed writeX (survivor edge P1→P2) and with writeX's *potential
// compensation* (completion edge P2→P1) — a two-cycle. P2 therefore
// waits out P1's abort instead of risking a cascade, and the outcome
// matches avoidance mode: P1 aborts alone, P2 commits untouched.
// Making the acyclicity check cascade-aware (so this dependency forms
// and a real cascade fires) also requires cascade support in the
// concurrent runtime and federation layers — a ROADMAP item, not this
// test's job.
func TestCascadeModeDefersFigure7Dependency(t *testing.T) {
	fed, jobs := cascadeWorld(t)
	s2, _ := fed.Subsystem("s2")
	s2.ForceFail("gate", 1)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Cascades != 0 {
		t.Fatalf("acyclicity guard should have deferred readX, metrics = %+v", res.Metrics)
	}
	if res.Metrics.PolicyWaits == 0 {
		t.Fatal("readX must have been policy-deferred at least once")
	}
	if !res.Outcomes["P1"].Aborted {
		t.Fatal("P1 must abort on its pivot failure")
	}
	if !res.Outcomes["P2"].Committed {
		t.Fatal("P2 must commit after waiting out P1's abort")
	}
	// P1's writeX compensated, P2's readX survived: x = +1 exactly.
	s1, _ := fed.Subsystem("s1")
	if v := s1.Get("x"); v != 1 {
		t.Fatalf("x = %d, want exactly P2's surviving write", v)
	}
	ok, at, _, err := res.Schedule.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("schedule not PRED (prefix %d):\n%s", at, res.Schedule)
	}
}

// TestEngineTable pins the conflict-table accessor: writeX and readX
// share item x and must conflict; slow touches only z and must not.
func TestEngineTable(t *testing.T) {
	fed, _ := cascadeWorld(t)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	table := eng.Table()
	if table == nil {
		t.Fatal("nil conflict table")
	}
	if !table.Conflicts("writeX", "readX") {
		t.Fatal("writeX and readX share x and must conflict")
	}
	if table.Conflicts("writeX", "slow") {
		t.Fatal("writeX and slow are disjoint")
	}
}
