package scheduler

import (
	"fmt"
	"sort"
	"strconv"

	"transproc/internal/activity"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// DurableReport is RecoveryReport plus what the page-level phase did.
type DurableReport struct {
	*RecoveryReport
	// RestoredInDoubt counts prepared transactions re-created from the
	// log because the crash took their durable intent records.
	RestoredInDoubt int
	// RedoItems / UndoItems count data items the reconciliation forced
	// forward (logged as committed, missing from the pages) or rolled
	// back (on the pages, never committed in the log).
	RedoItems int
	UndoItems int
	// FlushedPages counts pages written when making the recovered
	// image durable.
	FlushedPages int
}

// RecoverDurable is Recover for a federation whose subsystems persist
// their state in heap-file stores (subsystem.AttachStore): a crash
// kills scheduler state *and* subsystem pages, and a restart reopens
// the stores — whose images may be stale (dirty pages never flushed),
// ahead (applied transactions whose log record the crash cut off), or
// missing 2PC bookkeeping. Before the normal composed recovery it
// therefore:
//
//  1. raises every subsystem's transaction-id floor past the ids the
//     log names, so restarted subsystems never recycle them;
//  2. restores in-doubt transactions the log shows as prepared but the
//     reopened subsystem has no memory of — neither a durable intent
//     nor a fate (without this, 2PC resolution cannot tell "never
//     happened" from "lost") — so presumed abort/commit finds them;
//  3. reconciles each store's data items against the expected image
//     derived from the log (page-level redo/undo): baselines, plus
//     checkpoint-summarized committed work, plus the committed and
//     compensating events of the expanded log — excluding work phase 1
//     will apply through restored in-doubt transactions, and adding
//     work whose durable fate survived but whose log record did not.
//
// Then Recover runs as usual (its invocations write through to the
// stores), and the recovered image is flushed so a second crash replays
// from a consistent base. The federation's subsystems must have their
// stores attached already; with no store attached anywhere this is
// exactly RecoverWithMetrics.
func RecoverDurable(fed *subsystem.Federation, log wal.Log, defs []*process.Process, m *metrics.Registry) (*DurableReport, error) {
	rep := &DurableReport{}
	if !fed.Durable() {
		r, err := RecoverWithMetrics(fed, log, defs, m)
		rep.RecoveryReport = r
		return rep, err
	}
	raw, err := log.Records()
	if err != nil {
		return nil, err
	}
	exp := wal.Expand(raw)
	images, err := wal.Analyze(exp.Records)
	if err == wal.ErrNoLog {
		images = nil
	} else if err != nil {
		return nil, err
	}

	// 1. Transaction-id floors.
	floors := make(map[string]int64)
	for _, r := range exp.Records {
		if r.Subsystem != "" && r.Tx > floors[r.Subsystem] {
			floors[r.Subsystem] = r.Tx
		}
	}
	for name, tx := range floors {
		if sub, ok := fed.Subsystem(name); ok {
			sub.EnsureTxFloor(subsystem.TxID(tx))
		}
	}

	// 2. Restore log-prepared transactions the reopened subsystems have
	// no record of. A durable fate means the transaction was resolved
	// pre-crash and phase 1 must consult that fate, not a resurrected
	// intent; an in-doubt transaction (intent survived) needs nothing.
	var ids []string
	for id := range images {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		img := images[id]
		var locals []int
		for local := range img.Prepared {
			locals = append(locals, local)
		}
		sort.Ints(locals)
		for _, local := range locals {
			if img.Resolved[local] {
				continue
			}
			ptx := img.Prepared[local]
			sub, ok := fed.Subsystem(ptx.Subsystem)
			if !ok {
				return nil, fmt.Errorf("scheduler: log prepares at unknown subsystem %q", ptx.Subsystem)
			}
			if sub.DurableStore() == nil {
				continue
			}
			tx := subsystem.TxID(ptx.Tx)
			if _, known := sub.TxFate(tx); known {
				continue
			}
			if inDoubtTx(sub, tx) {
				continue
			}
			if err := sub.RestorePrepared(tx, string(resolveOrigin(process.ID(id))), ptx.Service); err != nil {
				return nil, fmt.Errorf("scheduler: restoring prepared tx %d: %w", ptx.Tx, err)
			}
			rep.RestoredInDoubt++
		}
	}

	// 3. Page-level redo/undo against the log-derived expected image.
	for _, sub := range fed.Subsystems() {
		if sub.DurableStore() == nil {
			continue
		}
		expected, err := expectedDurableImage(fed, sub, exp, images)
		if err != nil {
			return nil, err
		}
		redo, undo, err := sub.ReconcileDurable(expected)
		if err != nil {
			return nil, fmt.Errorf("scheduler: reconciling %s: %w", sub.Name(), err)
		}
		rep.RedoItems += redo
		rep.UndoItems += undo
	}

	r, err := RecoverWithMetrics(fed, log, defs, m)
	if err != nil {
		return nil, err
	}
	rep.RecoveryReport = r

	for _, sub := range fed.Subsystems() {
		n, err := sub.FlushStore()
		if err != nil {
			return nil, fmt.Errorf("scheduler: flushing %s after recovery: %w", sub.Name(), err)
		}
		rep.FlushedPages += n
	}
	return rep, nil
}

// inDoubtTx reports whether tx is currently in doubt at sub.
func inDoubtTx(sub *subsystem.Subsystem, tx subsystem.TxID) bool {
	for _, r := range sub.InDoubt() {
		if r.Tx == tx {
			return true
		}
	}
	return false
}

// expectedDurableImage computes, for one subsystem, the data-item image
// its pages must show *before* the normal recovery runs: exactly the
// committed work of the expanded log (mirroring the exactly-once
// accounting of fault.CheckRecovered), minus the work recovery's 2PC
// resolution will itself apply through in-doubt transactions, plus the
// work whose durable fate survived the crash but whose log record did
// not (phase 1 re-logs those from TxFate without re-applying).
func expectedDurableImage(fed *subsystem.Federation, sub *subsystem.Subsystem, exp wal.Expansion, images map[string]*wal.ProcImage) (map[string]int64, error) {
	expected := make(map[string]int64)
	for item, v := range sub.Baselines() {
		expected[item] = v
	}
	doubt := make(map[int64]bool)
	for _, r := range sub.InDoubt() {
		doubt[int64(r.Tx)] = true
	}
	addSvc := func(service string, n int64) error {
		spec, ok := fed.Spec(service)
		if !ok {
			return fmt.Errorf("scheduler: log uses unknown service %q", service)
		}
		if spec.Kind == activity.Compensation {
			n = -n
		}
		for _, item := range spec.WriteSet {
			expected[item] += n
		}
		return nil
	}
	owns := func(service string) bool {
		owner, ok := fed.Owner(service)
		return ok && owner == sub
	}
	if exp.Checkpoint != nil {
		for svc, n := range exp.Checkpoint.AppliedSvc {
			if !owns(svc) {
				continue
			}
			if err := addSvc(svc, n); err != nil {
				return nil, err
			}
		}
	}
	seen := make(map[string]bool)        // "proc/local" commit dedup
	contributing := make(map[int64]bool) // txs the log already accounts
	for _, r := range exp.Records {
		committed := (r.Type == wal.RecOutcome && r.Outcome == "committed") ||
			(r.Type == wal.RecResolved && r.Commit)
		if !committed && r.Type != wal.RecCompensate {
			continue
		}
		if committed {
			key := r.Proc + "/" + strconv.Itoa(r.Local)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		if !owns(r.Service) {
			continue
		}
		if r.Tx != 0 {
			contributing[r.Tx] = true
			if doubt[r.Tx] {
				continue
			}
		}
		if err := addSvc(r.Service, 1); err != nil {
			return nil, err
		}
	}
	// Durable fates without a log record: the crash hit between the
	// subsystem-side resolution and its log write. The effects are (or
	// will be reconciled) on the pages, and phase 1 re-logs the fate via
	// TxFate without re-applying — so the expected image must include
	// them.
	for _, img := range images {
		for local, ptx := range img.Prepared {
			if img.Resolved[local] || ptx.Subsystem != sub.Name() {
				continue
			}
			if contributing[ptx.Tx] || doubt[ptx.Tx] {
				continue
			}
			if committed, known := sub.TxFate(subsystem.TxID(ptx.Tx)); known && committed {
				if err := addSvc(ptx.Service, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return expected, nil
}
