package scheduler_test

import (
	"errors"
	"path/filepath"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// TestSerialModeStrictOrder verifies the serial baseline really runs one
// process at a time, in arrival order.
func TestSerialModeStrictOrder(t *testing.T) {
	fed := paper.Federation(1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.Serial})
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	// In the event stream, once a process's first event appears, no
	// other process's event may appear until its Terminate.
	var current process.ID
	for _, e := range res.Schedule.Events() {
		if e.Type == schedule.GroupAbort {
			continue
		}
		if current == "" {
			current = e.Proc
		}
		if e.Proc != current {
			t.Fatalf("serial violated: %s interleaved with %s\n%s", e.Proc, current, res.Schedule)
		}
		if e.Type == schedule.Terminate {
			current = ""
		}
	}
}

// TestConservativeAllowsDisjointParallelism verifies the conservative
// baseline admits non-conflicting processes concurrently.
func TestConservativeAllowsDisjointParallelism(t *testing.T) {
	// P2 and P3 share no conflicting services (P3 only conflicts P1 via
	// a11/a31).
	fed := paper.Federation(1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.Conservative})
	res, err := eng.Run([]*process.Process{paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	serialEng, _ := scheduler.New(paper.Federation(1), scheduler.Config{Mode: scheduler.Serial})
	serialRes, err := serialEng.Run([]*process.Process{paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Makespan >= serialRes.Metrics.Makespan {
		t.Fatalf("conservative (%d) should overlap disjoint processes (serial %d)",
			res.Metrics.Makespan, serialRes.Metrics.Makespan)
	}
}

// TestArrivalTimesRespected verifies jobs are admitted no earlier than
// their arrival times.
func TestArrivalTimesRespected(t *testing.T) {
	fed := paper.Federation(1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.RunJobs([]scheduler.Job{
		{Proc: paper.P2()},
		{Proc: paper.P3(), Arrival: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes["P3"].Start < 50 {
		t.Fatalf("P3 started at %d, before its arrival 50", res.Outcomes["P3"].Start)
	}
	if res.Metrics.Makespan < 50 {
		t.Fatalf("makespan %d cannot precede the last arrival", res.Metrics.Makespan)
	}
}

// TestFileWALEndToEnd runs the engine against a file-backed write-ahead
// log, crashes it, reopens the log and recovers.
func TestFileWALEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scheduler.wal")
	log, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	fed := paper.Federation(5)
	eng, _ := scheduler.New(fed, scheduler.Config{
		Mode: scheduler.PREDCascade, Log: log, CrashAfterEvents: 5,
	})
	procs := []*process.Process{paper.P1(), paper.P2()}
	_, err = eng.Run(procs)
	if !errors.Is(err, scheduler.ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// "Reboot": reopen the log and recover against the surviving
	// subsystems.
	log2, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	report, err := scheduler.Recover(fed, log2, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.InDoubt()) != 0 {
		t.Fatal("in-doubt transactions remain")
	}
	if len(report.BackwardRecovered)+len(report.ForwardRecovered)+len(report.AlreadyTerminated) == 0 {
		t.Fatal("recovery processed nothing")
	}
}

// TestRecoveryIdempotent runs Recover twice; the second run must be a
// no-op (all processes already terminated in the log).
func TestRecoveryIdempotent(t *testing.T) {
	fed := paper.Federation(5)
	log := wal.NewMemLog()
	eng, _ := scheduler.New(fed, scheduler.Config{
		Mode: scheduler.PRED, Log: log, CrashAfterEvents: 4,
	})
	procs := []*process.Process{paper.P1(), paper.P2()}
	if _, err := eng.Run(procs); !errors.Is(err, scheduler.ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	snapshotAfterFirst := func() map[string]int64 { return fed.Snapshot() }
	if _, err := scheduler.Recover(fed, log, procs); err != nil {
		t.Fatal(err)
	}
	before := snapshotAfterFirst()
	report, err := scheduler.Recover(fed, log, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.BackwardRecovered)+len(report.ForwardRecovered) != 0 {
		t.Fatalf("second recovery must find no active processes: %+v", report)
	}
	after := fed.Snapshot()
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("second recovery changed state: %s %d -> %d", k, v, after[k])
		}
	}
}

// TestMaxRestartsExhaustion forces a process to fail repeatedly until it
// gives up permanently.
func TestMaxRestartsExhaustion(t *testing.T) {
	fed := subsystem.NewFederation()
	sub := subsystem.New("rm", 1)
	sub.MustRegister(activity.Spec{
		Name: "c1", Kind: activity.Compensatable, Subsystem: "rm",
		Compensation: "c1⁻¹", WriteSet: []string{"x"},
	})
	sub.MustRegister(activity.Spec{
		Name: "p1", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"y"},
	})
	fed.MustAdd(sub)
	// The pivot always fails: backward recovery every time; the process
	// is not restartable on failure-aborts (it failed on its own), so a
	// single abort suffices.
	sub.ForceFail("p1", 100)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED, MaxRestarts: 2})
	proc := process.NewBuilder("P").
		Add(1, "c1", activity.Compensatable).
		Add(2, "p1", activity.Pivot).
		Seq(1, 2).MustBuild()
	res, err := eng.Run([]*process.Process{proc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes["P"].Aborted {
		t.Fatal("process must abort")
	}
	if sub.Get("x") != 0 || sub.Get("y") != 0 {
		t.Fatal("backward recovery must be effect-free")
	}
}

// TestDeferredCommitVisibleOnlyAfter2PC verifies a deferred pivot's
// effects are invisible until the predecessor terminates.
func TestDeferredCommitVisibleOnlyAfter2PC(t *testing.T) {
	fed := subsystem.NewFederation()
	rm := subsystem.New("rm", 1)
	rm.MustRegister(activity.Spec{
		Name: "slowC", Kind: activity.Compensatable, Subsystem: "rm",
		Compensation: "slowC⁻¹", WriteSet: []string{"shared"}, Cost: 10,
	})
	rm.MustRegister(activity.Spec{
		Name: "readShared", Kind: activity.Compensatable, Subsystem: "rm",
		Compensation: "readShared⁻¹", ReadSet: []string{"shared"}, WriteSet: []string{"copy"}, Cost: 1,
	})
	rm.MustRegister(activity.Spec{
		Name: "piv", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"done"}, Cost: 1,
	})
	rm.MustRegister(activity.Spec{
		Name: "slowR", Kind: activity.Retriable, Subsystem: "rm", WriteSet: []string{"tail"}, Cost: 30,
	})
	fed.MustAdd(rm)

	// P1: slowC (writes shared) then a long retriable tail; stays active.
	p1 := process.NewBuilder("P1").
		Add(1, "slowC", activity.Compensatable).
		Add(2, "slowR", activity.Retriable).
		Seq(1, 2).MustBuild()
	// P2: readShared (conflicts slowC) then pivot; its pivot's commit
	// must be deferred until C_1.
	p2 := process.NewBuilder("P2").
		Add(1, "readShared", activity.Compensatable).
		Add(2, "piv", activity.Pivot).
		Seq(1, 2).MustBuild()

	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade})
	res, err := eng.Run([]*process.Process{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if res.Metrics.CommittedProcs != 2 {
		t.Fatalf("both must commit: %+v", res.Metrics)
	}
	if res.Metrics.Deferrals == 0 {
		t.Skip("interleaving produced no dependency; nothing to assert")
	}
	// The schedule must order C_1 before P2's pivot's commit position.
	evs := res.Schedule.Events()
	c1, pivAt := -1, -1
	for i, e := range evs {
		if e.Type == schedule.Terminate && e.Proc == "P1" {
			c1 = i
		}
		if e.Type == schedule.Invoke && e.Proc == "P2" && e.Service == "piv" {
			pivAt = i
		}
	}
	if c1 < 0 || pivAt < 0 || pivAt < c1 {
		t.Fatalf("deferred pivot must commit after C_1: C1@%d piv@%d\n%s", c1, pivAt, res.Schedule)
	}
}

// TestOutcomesBookkeeping sanity-checks the per-process outcome records.
func TestOutcomesBookkeeping(t *testing.T) {
	fed := paper.Federation(2)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P2()})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes["P2"]
	if out == nil || !out.Committed || out.Aborted {
		t.Fatalf("outcome = %+v", out)
	}
	if out.End < out.Start {
		t.Fatalf("end %d before start %d", out.End, out.Start)
	}
}

// TestWorkloadCCOnlyRunsToCompletion ensures the unsafe baseline at
// least terminates everything (it sacrifices correctness, not progress).
func TestWorkloadCCOnlyRunsToCompletion(t *testing.T) {
	p := workload.DefaultProfile(11)
	p.Processes = 10
	p.ConflictProb = 0.6
	p.PermFailureProb = 0.15
	w := workload.MustGenerate(p)
	eng, _ := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.CCOnly})
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CommittedProcs+res.Metrics.AbortedProcs < p.Processes {
		t.Fatalf("not all processes terminated: %+v", res.Metrics)
	}
}
