package scheduler_test

import (
	"errors"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/workload"
)

// TestWeakOrderCrashRecovery crashes the scheduler at many points while
// the weak order is active and verifies recovery always resolves all
// in-doubt transactions (including weakly invoked ones) and leaves
// consistent state.
func TestWeakOrderCrashRecovery(t *testing.T) {
	for k := 1; k <= 25; k += 2 {
		p := workload.DefaultProfile(int64(200 + k))
		p.Processes = 8
		p.ConflictProb = 0.5
		p.PermFailureProb = 0.1
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{
			Mode: scheduler.PREDCascade, WeakOrder: true, CrashAfterEvents: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		defs := make([]*process.Process, 0, len(w.Jobs))
		for _, j := range w.Jobs {
			defs = append(defs, j.Proc)
		}
		_, err = eng.RunJobs(w.Jobs)
		if err == nil {
			continue // finished before the crash point
		}
		if !errors.Is(err, scheduler.ErrCrashed) {
			t.Fatalf("k=%d: %v", k, err)
		}
		if _, err := scheduler.Recover(w.Fed, eng.Log(), defs); err != nil {
			t.Fatalf("k=%d: recovery: %v", k, err)
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("k=%d: %d in-doubt transactions remain", k, n)
		}
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("k=%d: %s negative (%d)", k, item, v)
			}
		}
	}
}

// TestNestedAlternativesUnderScheduler executes a deeply nested
// well-formed structure (three pivots, two nested alternatives) through
// failures of every pivot.
func TestNestedAlternativesUnderScheduler(t *testing.T) {
	// c1 ≪ p1 ≪ (c2 ≪ p2 ≪ (c3 ≪ p3 | r3) | r2) with retriable tails.
	build := func() *process.Process {
		return process.NewBuilder("NEST").
			Add(1, "c1", activity.Compensatable).
			Add(2, "p1", activity.Pivot).
			Add(3, "c2", activity.Compensatable).
			Add(4, "p2", activity.Pivot).
			Add(5, "c3", activity.Compensatable).
			Add(6, "p3", activity.Pivot).
			Add(7, "r3", activity.Retriable).
			Add(8, "r2", activity.Retriable).
			Seq(1, 2).
			Chain(2, 3, 8). // after p1: nested structure or retriable r2
			Seq(3, 4).
			Chain(4, 5, 7). // after p2: deeper structure or retriable r3
			Seq(5, 6).
			MustBuild()
	}
	mkFed := func() (*subsystem.Federation, *subsystem.Subsystem) {
		sub := subsystem.New("rm", 1)
		for _, svc := range []struct {
			name string
			kind activity.Kind
		}{
			{"c1", activity.Compensatable}, {"c2", activity.Compensatable}, {"c3", activity.Compensatable},
			{"p1", activity.Pivot}, {"p2", activity.Pivot}, {"p3", activity.Pivot},
			{"r2", activity.Retriable}, {"r3", activity.Retriable},
		} {
			spec := activity.Spec{
				Name: svc.name, Kind: svc.kind, Subsystem: "rm",
				WriteSet: []string{"item_" + svc.name},
			}
			if svc.kind == activity.Compensatable {
				spec.Compensation = svc.name + "⁻¹"
			}
			sub.MustRegister(spec)
		}
		fed := subsystem.NewFederation()
		fed.MustAdd(sub)
		return fed, sub
	}
	for _, failSvc := range []string{"", "p2", "p3", "c2", "c3"} {
		t.Run("fail="+failSvc, func(t *testing.T) {
			fed, sub := mkFed()
			if failSvc != "" {
				sub.ForceFail(failSvc, 1)
			}
			eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run([]*process.Process{build()})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Outcomes["NEST"].Committed {
				t.Fatalf("nested process must commit via an alternative: %s", res.Schedule)
			}
			ok, _, _, err := res.Schedule.PRED()
			if err != nil || !ok {
				t.Fatalf("PRED = %v %v", ok, err)
			}
			// Compensation accounting: every committed compensatable on
			// an abandoned branch was undone.
			for item, v := range fed.Snapshot() {
				if v < 0 {
					t.Fatalf("%s negative", item)
				}
			}
		})
	}
}
