package scheduler_test

import (
	"errors"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
)

// verifySchedule replays the produced schedule for legality and checks
// PRED; it returns the schedule for further assertions.
func verifySchedule(t *testing.T, res *scheduler.Result) *schedule.Schedule {
	t.Helper()
	s := res.Schedule
	procs := make(map[process.ID]*process.Process)
	for _, p := range s.Processes() {
		procs[p.ID] = p
	}
	if _, err := schedule.Replay(procs, s.Events()); err != nil {
		t.Fatalf("produced schedule is illegal: %v\nschedule: %s", err, s)
	}
	ok, at, red, err := s.PRED()
	if err != nil {
		t.Fatalf("PRED check: %v\nschedule: %s", err, s)
	}
	if !ok {
		detail := ""
		if red != nil {
			detail = red.Describe()
		}
		t.Fatalf("schedule not PRED (prefix %d): %s\n%s", at, s, detail)
	}
	return s
}

func TestSingleProcessHappyPath(t *testing.T) {
	fed := paper.Federation(1)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*process.Process{paper.P1()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if !res.Outcomes["P1"].Committed {
		t.Fatal("P1 must commit")
	}
	sub, _ := fed.Subsystem("subA")
	if sub.Get("i1") != 1 || sub.Get("i2") != 1 {
		t.Fatal("a11's effects missing")
	}
	subD, _ := fed.Subsystem("subD")
	if subD.Get("d13") != 1 || subD.Get("d14") != 1 {
		t.Fatal("preferred path effects missing")
	}
	if res.Metrics.CommittedProcs != 1 || res.Metrics.AbortedProcs != 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	if res.Metrics.Makespan <= 0 {
		t.Fatal("makespan must advance")
	}
}

func TestAlternativeAfterFailure(t *testing.T) {
	fed := paper.Federation(1)
	subD, _ := fed.Subsystem("subD")
	subD.ForceFail(paper.SvcA13, 1) // a13 fails -> alternative a15 a16
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P1()})
	if err != nil {
		t.Fatal(err)
	}
	s := verifySchedule(t, res)
	if !res.Outcomes["P1"].Committed {
		t.Fatal("P1 must still commit via the alternative")
	}
	if subD.Get("d13") != 0 || subD.Get("d14") != 0 {
		t.Fatal("failed branch must leave no effects")
	}
	subC, _ := fed.Subsystem("subC")
	if subC.Get("k") != 1 || subD.Get("d16") != 1 {
		t.Fatal("alternative path a15 a16 must have run")
	}
	found := false
	for _, e := range s.Events() {
		if e.Type == schedule.FailedInvoke && e.Service == paper.SvcA13 {
			found = true
		}
	}
	if !found {
		t.Fatal("failure event must be recorded")
	}
}

func TestCompensationAfterPivotFailure(t *testing.T) {
	fed := paper.Federation(1)
	subD, _ := fed.Subsystem("subD")
	subD.ForceFail(paper.SvcA14, 1) // a14 fails -> compensate a13 -> alternative
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P1()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if !res.Outcomes["P1"].Committed {
		t.Fatal("P1 must commit")
	}
	if subD.Get("d13") != 0 {
		t.Fatal("a13 must be compensated")
	}
	if res.Metrics.Compensations != 1 {
		t.Fatalf("compensations = %d, want 1", res.Metrics.Compensations)
	}
}

func TestBackwardRecoveryOnPivotFailure(t *testing.T) {
	fed := paper.Federation(1)
	subB, _ := fed.Subsystem("subB")
	subB.ForceFail(paper.SvcA12, 1) // the state-determining pivot fails
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P1()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if !res.Outcomes["P1"].Aborted {
		t.Fatal("P1 must abort")
	}
	// Guaranteed termination: backward recovery leaves no effects.
	subA, _ := fed.Subsystem("subA")
	if subA.Get("i1") != 0 || subA.Get("i2") != 0 {
		t.Fatal("backward recovery must be effect-free")
	}
}

func TestRetriableTransientFailuresRetry(t *testing.T) {
	fed := paper.Federation(1)
	subC, _ := fed.Subsystem("subC")
	subC.ForceFail(paper.SvcA25, 3) // transient failures of a retriable
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P2()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if !res.Outcomes["P2"].Committed {
		t.Fatal("P2 must commit after retries")
	}
	if res.Metrics.Retries != 3 {
		t.Fatalf("retries = %d, want 3", res.Metrics.Retries)
	}
	if subC.Get("k") != 1 {
		t.Fatal("a25 must eventually apply")
	}
}

func runConcurrent(t *testing.T, mode scheduler.Mode, seed int64) (*scheduler.Result, *subsystem.Federation) {
	t.Helper()
	fed := paper.Federation(seed)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	return res, fed
}

func TestConcurrentPREDModes(t *testing.T) {
	for _, mode := range []scheduler.Mode{scheduler.PRED, scheduler.PREDCascade, scheduler.Serial, scheduler.Conservative} {
		t.Run(mode.String(), func(t *testing.T) {
			res, _ := runConcurrent(t, mode, 7)
			s := verifySchedule(t, res)
			if res.Metrics.CommittedProcs < 3 {
				t.Fatalf("all three processes must commit, got %d (schedule %s)", res.Metrics.CommittedProcs, s)
			}
			if !s.Serializable() {
				t.Fatal("schedule must be serializable")
			}
			if ok, vs := s.ProcessRecoverable(); !ok {
				// Non-materialized violations are acceptable per the
				// strict form of Theorem 1.
				for _, v := range vs {
					if s.ViolationMaterialized(v) {
						t.Fatalf("materialized Proc-REC violation: %+v\nschedule: %s", v, s)
					}
				}
			}
		})
	}
}

func TestSerialSlowerThanPRED(t *testing.T) {
	resPred, _ := runConcurrent(t, scheduler.PRED, 7)
	resSerial, _ := runConcurrent(t, scheduler.Serial, 7)
	if resPred.Metrics.Makespan >= resSerial.Metrics.Makespan {
		t.Fatalf("PRED makespan %d should beat serial %d (the paper's parallelism motivation)",
			resPred.Metrics.Makespan, resSerial.Metrics.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	r1, _ := runConcurrent(t, scheduler.PRED, 7)
	r2, _ := runConcurrent(t, scheduler.PRED, 7)
	if r1.Metrics != r2.Metrics {
		t.Fatalf("same seed must reproduce metrics:\n%+v\n%+v", r1.Metrics, r2.Metrics)
	}
	if r1.Schedule.String() != r2.Schedule.String() {
		t.Fatal("same seed must reproduce the schedule")
	}
}

func TestLemma1DeferralObserved(t *testing.T) {
	// P1 and P2 conflict via (a11, a21): whichever runs a21 second must
	// defer its pivot a23's commit until C_1 (or vice versa). With both
	// started together, at least one deferral must occur in PRED mode
	// when the conflict materializes.
	fed := paper.Federation(3)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade})
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2()})
	if err != nil {
		t.Fatal(err)
	}
	s := verifySchedule(t, res)
	if res.Metrics.Deferrals == 0 {
		t.Skipf("no conflict materialized in this interleaving: %s", s)
	}
	if res.Metrics.TwoPCCommits == 0 {
		t.Fatal("deferred commits must be resolved via 2PC")
	}
}

func TestCascadeModeUnderPredecessorAbort(t *testing.T) {
	// Force P1's pivot a12 to fail so P1 backward-recovers a11; if P2
	// executed the conflicting a21 under a cascading dependency, it is
	// cascade-aborted and restarted.
	fed := paper.Federation(3)
	subB, _ := fed.Subsystem("subB")
	subB.ForceFail(paper.SvcA12, 1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade})
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2()})
	if err != nil {
		t.Fatal(err)
	}
	s := verifySchedule(t, res)
	if !res.Outcomes["P1"].Aborted {
		t.Fatalf("P1 must abort: %s", s)
	}
	// P2 must commit in the end — directly or via a restart.
	committed := false
	for id, out := range res.Outcomes {
		if out.Committed && (id == "P2" || id == "P2+r1" || id == "P2+r2" || id == "P2+r3") {
			committed = true
		}
	}
	if !committed {
		t.Fatalf("P2 (possibly restarted) must commit: %s", s)
	}
	// Subsystem state: P1 effect-free, P2 effective exactly once.
	subA, _ := fed.Subsystem("subA")
	if subA.Get("i2") != 0 {
		t.Fatal("P1's a11 must be compensated (writes i2 too)")
	}
	if subA.Get("i1") != 1 {
		t.Fatalf("exactly one effective a21 expected, i1 = %d", subA.Get("i1"))
	}
}

func TestAvoidanceModeNoCascades(t *testing.T) {
	fed := paper.Federation(3)
	subB, _ := fed.Subsystem("subB")
	subB.ForceFail(paper.SvcA12, 1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if res.Metrics.Cascades != 0 {
		t.Fatal("avoidance mode must never cascade")
	}
	if !res.Outcomes["P2"].Committed {
		t.Fatal("P2 must commit")
	}
}

// TestCIMScenario reproduces Section 2 / Figure 1 (experiment E8): under
// the PRED scheduler the production process is deferred until the
// construction process commits, so a failing test never invalidates
// consumed BOM data; under the CC-only scheduler the anomaly of
// Section 2.2 appears — parts are produced against a BOM that is later
// compensated away.
func TestCIMScenario(t *testing.T) {
	build := func(mode scheduler.Mode, failTest bool) (*scheduler.Result, *subsystem.Federation, error) {
		fed := paper.CIMFederation(11)
		if failTest {
			sub, _ := fed.Subsystem("testdb")
			sub.ForceFail(paper.SvcTest, 1)
		}
		eng, err := scheduler.New(fed, scheduler.Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		// Production starts once the BOM has been entered (design cost 8
		// + enterBOM cost 2) but before the test concludes — exactly the
		// interleaving of Figure 1.
		res, err := eng.RunJobs([]scheduler.Job{
			{Proc: paper.CIMConstruction("Pc")},
			{Proc: paper.CIMProduction("Pp"), Arrival: 11},
		})
		return res, fed, err
	}

	t.Run("pred-correct-under-failure", func(t *testing.T) {
		res, fed, err := build(scheduler.PRED, true)
		if err != nil {
			t.Fatal(err)
		}
		verifySchedule(t, res)
		pdm, _ := fed.Subsystem("pdm")
		floor, _ := fed.Subsystem("floor")
		if pdm.Get("bom") != 0 {
			t.Fatal("failed test must compensate the BOM entry")
		}
		// Production still ran, but only after construction terminated:
		// consistency is preserved (whatever it read is final state).
		if ok, _, _, _ := res.Schedule.PRED(); !ok {
			t.Fatal("PRED scheduler must produce a PRED schedule")
		}
		_ = floor
	})

	t.Run("cc-only-anomaly", func(t *testing.T) {
		res, fed, err := build(scheduler.CCOnly, true)
		if err != nil {
			t.Fatal(err)
		}
		pdm, _ := fed.Subsystem("pdm")
		floor, _ := fed.Subsystem("floor")
		// The anomaly: parts were produced although the BOM they were
		// built from was invalidated by compensation (Section 2.2:
		// "severe inconsistencies as no valid construction and BOM of
		// these parts exists").
		if !(pdm.Get("bom") == 0 && floor.Get("parts") == 1 && pdm.Get("bomCopy") == 1) {
			t.Skipf("interleaving did not materialize the anomaly: bom=%d parts=%d copy=%d",
				pdm.Get("bom"), floor.Get("parts"), pdm.Get("bomCopy"))
		}
		if ok, _, _, _ := res.Schedule.PRED(); ok {
			t.Fatalf("CC-only schedule with the anomaly must not be PRED: %s", res.Schedule)
		}
	})

	t.Run("both-commit-without-failure", func(t *testing.T) {
		res, fed, err := build(scheduler.PRED, false)
		if err != nil {
			t.Fatal(err)
		}
		verifySchedule(t, res)
		if res.Metrics.CommittedProcs != 2 {
			t.Fatalf("both processes must commit: %+v", res.Metrics)
		}
		pdm, _ := fed.Subsystem("pdm")
		floor, _ := fed.Subsystem("floor")
		if pdm.Get("bom") != 1 || floor.Get("parts") != 1 {
			t.Fatal("both processes' effects must be applied")
		}
	})
}

func TestCrashRecovery(t *testing.T) {
	fed := paper.Federation(5)
	eng, _ := scheduler.New(fed, scheduler.Config{
		Mode:             scheduler.PRED,
		CrashAfterEvents: 4,
	})
	procs := []*process.Process{paper.P1(), paper.P2()}
	res, err := eng.Run(procs)
	if !errors.Is(err, scheduler.ErrCrashed) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	if !res.Crashed {
		t.Fatal("result must flag the crash")
	}
	log := eng.Log()
	report, err := scheduler.Recover(fed, log, procs)
	if err != nil {
		t.Fatal(err)
	}
	// After recovery: no in-doubt transactions anywhere, and every
	// process is either effect-free (backward recovered) or forward
	// complete.
	if n := len(fed.InDoubt()); n != 0 {
		t.Fatalf("in-doubt transactions remain: %v", fed.InDoubt())
	}
	total := len(report.BackwardRecovered) + len(report.ForwardRecovered) + len(report.AlreadyTerminated)
	if total == 0 {
		t.Fatal("recovery must have processed the active processes")
	}
	// Backward-recovered processes are effect-free: verify via the
	// compensation invariant of subA (process P1 writes i1,i2; P2
	// writes i1): every item must be a non-negative count matching the
	// committed survivors.
	subA, _ := fed.Subsystem("subA")
	for _, item := range []string{"i1", "i2"} {
		if v := subA.Get(item); v < 0 {
			t.Fatalf("negative count %s=%d after recovery", item, v)
		}
	}
}

func TestCrashRecoveryAllPoints(t *testing.T) {
	// Crash after every possible completion count and verify recovery
	// always terminates every process and resolves all in-doubt state.
	for k := 1; k <= 20; k++ {
		fed := paper.Federation(int64(100 + k))
		eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade, CrashAfterEvents: k})
		procs := []*process.Process{paper.P1(), paper.P2(), paper.P3()}
		_, err := eng.Run(procs)
		if err == nil {
			// Run finished before the crash point: nothing to recover.
			continue
		}
		if !errors.Is(err, scheduler.ErrCrashed) {
			t.Fatalf("k=%d: %v", k, err)
		}
		if _, err := scheduler.Recover(fed, eng.Log(), procs); err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		if n := len(fed.InDoubt()); n != 0 {
			t.Fatalf("k=%d: in-doubt transactions remain", k)
		}
	}
}

func TestValidationRejectsBadProcess(t *testing.T) {
	fed := paper.Federation(1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	// Process references an unknown service.
	badSvc := process.NewBuilder("B").
		Add(1, "ghost", activity.Retriable).
		MustBuild()
	if _, err := eng.Run([]*process.Process{badSvc}); err == nil {
		t.Fatal("unknown service must be rejected")
	}
}

func TestValidationRejectsKindMismatch(t *testing.T) {
	fed := paper.Federation(1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	// a12 is a pivot in the federation but declared retriable here.
	bad := process.NewBuilder("B").
		Add(1, paper.SvcA12, activity.Retriable).
		MustBuild()
	if _, err := eng.Run([]*process.Process{bad}); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
}

func TestBlockPivotsAblation(t *testing.T) {
	fed := paper.Federation(3)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED, BlockPivots: true})
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if res.Metrics.CommittedProcs < 3 {
		t.Fatalf("all processes must commit: %+v", res.Metrics)
	}
}
