package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// RecoveryReport summarizes what crash recovery did.
type RecoveryReport struct {
	// Resolved2PC counts in-doubt transactions committed / rolled back
	// during resolution (presumed commit after a logged decision,
	// presumed abort otherwise).
	Resolved2PCCommitted int
	Resolved2PCAborted   int
	// BackwardRecovered lists processes completed by compensation.
	BackwardRecovered []process.ID
	// ForwardRecovered lists processes completed by their forward
	// recovery path.
	ForwardRecovered []process.ID
	// AlreadyTerminated lists processes the log shows as terminated.
	AlreadyTerminated []process.ID
	// Compensations and ForwardInvocations executed during recovery.
	Compensations      int
	ForwardInvocations int
}

// Recover performs crash recovery: it analyzes the write-ahead log,
// resolves in-doubt two-phase-commit transactions, rebuilds the state of
// every active process, and executes the group abort of Definition 8.2b
// — compensating B-REC processes backward and driving F-REC processes
// forward along their retriable paths. Compensations across processes
// run in reverse global order of their base activities (Lemma 2) and
// before conflicting forward invocations (Lemma 3).
//
// The federation must be the surviving subsystem state; defs the process
// definitions known to the scheduler (by original id).
func Recover(fed *subsystem.Federation, log wal.Log, defs []*process.Process) (*RecoveryReport, error) {
	return RecoverWithMetrics(fed, log, defs, nil)
}

// RecoverWithMetrics is Recover with an observability registry attached:
// 2PC resolutions, orphan rollbacks, the group abort and every recovery
// step are recorded as counters and decision-trace events. A nil
// registry makes it identical to Recover.
func RecoverWithMetrics(fed *subsystem.Federation, log wal.Log, defs []*process.Process, m *metrics.Registry) (*RecoveryReport, error) {
	recs, err := log.Records()
	if err != nil {
		return nil, err
	}
	images, err := wal.Analyze(recs)
	if err == wal.ErrNoLog {
		return &RecoveryReport{}, nil
	}
	if err != nil {
		return nil, err
	}
	byID := make(map[process.ID]*process.Process, len(defs))
	for _, p := range defs {
		byID[p.ID] = p
	}

	coord := twopc.New(log)
	coord.Metrics = m
	if m != nil {
		fed.SetMetrics(m)
		if il, ok := log.(wal.Instrumented); ok {
			il.SetMetrics(m)
		}
	}
	report := &RecoveryReport{}

	// Deterministic order over processes.
	var ids []string
	for id := range images {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Phase 1: resolve in-doubt transactions (presumed commit when a
	// decision record exists, presumed abort otherwise).
	for _, id := range ids {
		img := images[id]
		c, a, err := coord.Resolve(fed, img)
		if err != nil {
			return nil, fmt.Errorf("scheduler: resolving 2PC for %s: %w", id, err)
		}
		report.Resolved2PCCommitted += c
		report.Resolved2PCAborted += a
	}

	// Phase 1b: orphaned in-doubt transactions. An invocation may have
	// been dispatched (locks acquired, transaction prepared at the
	// subsystem) without its outcome reaching the log before the crash.
	// The log then has no prepared record, so the coordinator presumes
	// abort: any subsystem in-doubt transaction not known to the log is
	// rolled back — the classical "no prepare record → abort" rule.
	known := make(map[string]map[int64]bool) // subsystem -> tx set
	for _, img := range images {
		for _, ptx := range img.Prepared {
			if known[ptx.Subsystem] == nil {
				known[ptx.Subsystem] = make(map[int64]bool)
			}
			known[ptx.Subsystem][ptx.Tx] = true
		}
	}
	for subName, recsInDoubt := range fed.InDoubt() {
		sub, _ := fed.Subsystem(subName)
		for _, r := range recsInDoubt {
			if known[subName][int64(r.Tx)] {
				continue
			}
			if err := sub.AbortPrepared(r.Tx); err != nil {
				return nil, fmt.Errorf("scheduler: aborting orphaned transaction %d at %s: %w", r.Tx, subName, err)
			}
			report.Resolved2PCAborted++
			m.Inc(metrics.RollbacksOrphaned)
			m.Trace(metrics.TRollback, 0, "", int(r.Tx), "", "no prepare record: presumed abort")
		}
	}

	// Re-read the log: phase 1 appended resolution records that the
	// instance rebuild must observe (a decided prepared transaction is
	// now committed, an undecided one rolled back).
	recs, err = log.Records()
	if err != nil {
		return nil, err
	}

	// Phase 2: rebuild instances of active processes and compute their
	// completions.
	type pendingCompletion struct {
		id    process.ID
		def   *process.Process
		inst  *process.Instance
		steps []process.Step
		// seqOf maps a local id to the WAL position of its commit, for
		// the global reverse ordering of compensations.
		seqOf map[int]int
	}
	var completions []*pendingCompletion
	for _, id := range ids {
		img := images[id]
		if img.Terminated {
			report.AlreadyTerminated = append(report.AlreadyTerminated, process.ID(id))
			continue
		}
		def := byID[resolveOrigin(process.ID(id))]
		if def == nil {
			return nil, fmt.Errorf("scheduler: recovery found unknown process %q in the log", id)
		}
		if def.ID != process.ID(id) {
			def = def.WithID(process.ID(id))
		}
		inst, seqOf, err := rebuildInstance(def, recs)
		if err != nil {
			return nil, fmt.Errorf("scheduler: rebuilding %s: %w", id, err)
		}
		mode := inst.Mode()
		steps, err := inst.Abort()
		if err != nil {
			return nil, fmt.Errorf("scheduler: completion of %s: %w", id, err)
		}
		completions = append(completions, &pendingCompletion{
			id: process.ID(id), def: def, inst: inst, steps: steps, seqOf: seqOf,
		})
		if mode == process.BREC {
			report.BackwardRecovered = append(report.BackwardRecovered, process.ID(id))
			m.Inc(metrics.BackwardRecoveries)
			m.Trace(metrics.TBackward, 0, id, 0, "", "group abort: B-REC")
		} else {
			report.ForwardRecovered = append(report.ForwardRecovered, process.ID(id))
			m.Inc(metrics.ForwardRecoveries)
			m.Trace(metrics.TForward, 0, id, 0, "", "group abort: F-REC")
		}
	}
	if len(completions) > 0 {
		// One group abort covers all interrupted processes
		// (Definition 8.2b).
		m.Inc(metrics.GroupAborts)
		m.Trace(metrics.TGroupAbort, 0, "", len(completions), "", "")
	}

	// Phase 3: execute the group abort. First all rollbacks of leftover
	// prepared transactions (no effects), then all compensations in
	// reverse global order of their bases (Lemma 2), then the forward
	// invocations per process in order (after conflicting compensations,
	// Lemma 3 — trivially satisfied by running all compensations first).
	type globalStep struct {
		pc   *pendingCompletion
		st   process.Step
		base int // WAL position of the base commit (compensations)
	}
	var rollbacks, comps, forwards []globalStep
	for _, pc := range completions {
		for _, st := range pc.steps {
			switch st.Kind {
			case process.StepAbortPrepared:
				rollbacks = append(rollbacks, globalStep{pc: pc, st: st})
			case process.StepCompensate:
				comps = append(comps, globalStep{pc: pc, st: st, base: pc.seqOf[st.Local]})
			case process.StepInvoke:
				forwards = append(forwards, globalStep{pc: pc, st: st})
			}
		}
	}
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].base > comps[j].base })

	exec := func(gs globalStep) error {
		switch gs.st.Kind {
		case process.StepAbortPrepared:
			// Already handled in phase 1 (presumed abort resolved the
			// in-doubt transaction); just update the instance.
			return gs.pc.inst.ApplyStep(gs.st)
		case process.StepCompensate, process.StepInvoke:
			for {
				_, err := fed.Invoke(string(resolveOrigin(gs.pc.id)), gs.st.Service, subsystem.AutoCommit)
				if err == nil {
					break
				}
				if errors.Is(err, subsystem.ErrAborted) {
					continue // retriable: re-invoke
				}
				// Lock conflicts cannot persist here: recovery runs
				// sequentially and phase 1 released in-doubt locks.
				return fmt.Errorf("scheduler: recovery invoking %s: %w", gs.st.Service, err)
			}
			if gs.st.Kind == process.StepCompensate {
				report.Compensations++
				m.Inc(metrics.RecoveryCompensations)
				m.Trace(metrics.TCompensate, 0, string(gs.pc.id), gs.st.Local, gs.st.Service, "recovery")
				log.Append(wal.Record{Type: wal.RecCompensate, Proc: string(gs.pc.id), Local: gs.st.Local, Service: gs.st.Service})
			} else {
				report.ForwardInvocations++
				m.Inc(metrics.RecoveryForwardInvokes)
				m.Trace(metrics.TRecoveryStep, 0, string(gs.pc.id), gs.st.Local, gs.st.Service, "recovery")
				log.Append(wal.Record{Type: wal.RecOutcome, Proc: string(gs.pc.id), Local: gs.st.Local, Service: gs.st.Service, Outcome: "committed"})
			}
			return gs.pc.inst.ApplyStep(gs.st)
		}
		return nil
	}
	for _, gs := range rollbacks {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	for _, gs := range comps {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	for _, gs := range forwards {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	for _, pc := range completions {
		pc.inst.MarkTerminated(false)
		log.Append(wal.Record{Type: wal.RecTerminate, Proc: string(pc.id), Committed: false})
	}
	return report, nil
}

// resolveOrigin strips a restart suffix ("P1+r2" -> "P1").
func resolveOrigin(id process.ID) process.ID {
	s := string(id)
	for i := 0; i < len(s); i++ {
		if s[i] == '+' {
			return process.ID(s[:i])
		}
	}
	return id
}

// rebuildInstance replays a process's WAL records into a fresh instance
// and returns it together with the WAL position of each commit.
func rebuildInstance(def *process.Process, recs []wal.Record) (*process.Instance, map[int]int, error) {
	inst := process.NewInstance(def)
	seqOf := make(map[int]int)
	for i, r := range recs {
		if r.Proc != string(def.ID) {
			continue
		}
		switch r.Type {
		case wal.RecOutcome:
			switch r.Outcome {
			case "committed":
				if st := inst.Status(r.Local); st == process.Pending || st == process.Prepared {
					if err := inst.MarkCommitted(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			case "prepared":
				if inst.Status(r.Local) == process.Pending {
					if err := inst.MarkPrepared(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			}
		case wal.RecResolved:
			if r.Commit {
				if inst.Status(r.Local) == process.Prepared {
					if err := inst.MarkCommitted(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			} else if inst.Status(r.Local) == process.Prepared {
				if err := inst.MarkAbortedPrepared(r.Local); err != nil {
					return nil, nil, err
				}
			}
		case wal.RecFailed:
			if inst.Status(r.Local) == process.Pending {
				if _, err := inst.MarkFailed(r.Local); err != nil {
					return nil, nil, err
				}
			}
		case wal.RecCompensate:
			if inst.Status(r.Local) == process.Committed {
				if err := inst.MarkCompensated(r.Local); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return inst, seqOf, nil
}
