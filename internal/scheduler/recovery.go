package scheduler

import (
	"errors"
	"fmt"
	"sort"

	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// RecoveryReport summarizes what crash recovery did.
type RecoveryReport struct {
	// Resolved2PC counts in-doubt transactions committed / rolled back
	// during resolution (presumed commit after a logged decision,
	// presumed abort otherwise).
	Resolved2PCCommitted int
	Resolved2PCAborted   int
	// BackwardRecovered lists processes completed by compensation.
	BackwardRecovered []process.ID
	// ForwardRecovered lists processes completed by their forward
	// recovery path.
	ForwardRecovered []process.ID
	// AlreadyTerminated lists processes the log shows as terminated.
	AlreadyTerminated []process.ID
	// Compensations and ForwardInvocations executed during recovery.
	Compensations      int
	ForwardInvocations int
}

// Recover performs crash recovery: it analyzes the write-ahead log,
// resolves in-doubt two-phase-commit transactions, rebuilds the state of
// every active process, and executes the group abort of Definition 8.2b
// — compensating B-REC processes backward and driving F-REC processes
// forward along their retriable paths. Compensations across processes
// run in reverse global order of their base activities (Lemma 2) and
// before conflicting forward invocations (Lemma 3).
//
// The federation must be the surviving subsystem state; defs the process
// definitions known to the scheduler (by original id).
func Recover(fed *subsystem.Federation, log wal.Log, defs []*process.Process) (*RecoveryReport, error) {
	return RecoverWithMetrics(fed, log, defs, nil)
}

// RecoverWithMetrics is Recover with an observability registry attached:
// 2PC resolutions, orphan rollbacks, the group abort and every recovery
// step are recorded as counters and decision-trace events. A nil
// registry makes it identical to Recover.
func RecoverWithMetrics(fed *subsystem.Federation, log wal.Log, defs []*process.Process, m *metrics.Registry) (*RecoveryReport, error) {
	raw, err := log.Records()
	if err != nil {
		return nil, err
	}
	// Bounded replay: start from the latest valid checkpoint instead of
	// LSN 1. Expand yields the checkpoint's live records plus the
	// post-horizon tail — or the full record list when no (valid)
	// checkpoint exists, including the corrupt-checkpoint fallback.
	exp := wal.Expand(raw)
	m.Observe(metrics.HistReplayRecords, int64(len(exp.Records)))
	m.Observe(metrics.HistReplaySkipped, int64(exp.Skipped))
	if exp.Fallback {
		m.Inc(metrics.CheckpointFallbacks)
	}
	ckpt := exp.Checkpoint
	recs := exp.Records
	images, err := wal.Analyze(recs)
	if err == wal.ErrNoLog {
		return &RecoveryReport{}, nil
	}
	if err != nil {
		return nil, err
	}
	byID := make(map[process.ID]*process.Process, len(defs))
	for _, p := range defs {
		byID[p.ID] = p
	}

	coord := twopc.New(log)
	coord.Metrics = m
	if m != nil {
		fed.SetMetrics(m)
		if il, ok := log.(wal.Instrumented); ok {
			il.SetMetrics(m)
		}
	}
	report := &RecoveryReport{}

	// Deterministic order over processes.
	var ids []string
	for id := range images {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Phase 1: resolve in-doubt transactions (presumed commit when a
	// decision record exists, presumed abort otherwise).
	for _, id := range ids {
		img := images[id]
		c, a, err := coord.Resolve(fed, img)
		if err != nil {
			return nil, fmt.Errorf("scheduler: resolving 2PC for %s: %w", id, err)
		}
		report.Resolved2PCCommitted += c
		report.Resolved2PCAborted += a
	}

	// Phase 1b: orphaned in-doubt transactions. An invocation may have
	// been dispatched (locks acquired, transaction prepared at the
	// subsystem) without its outcome reaching the log before the crash.
	// The log then has no prepared record, so the coordinator presumes
	// abort: any subsystem in-doubt transaction not known to the log is
	// rolled back — the classical "no prepare record → abort" rule.
	known := make(map[string]map[int64]bool) // subsystem -> tx set
	for _, img := range images {
		for _, ptx := range img.Prepared {
			if known[ptx.Subsystem] == nil {
				known[ptx.Subsystem] = make(map[int64]bool)
			}
			known[ptx.Subsystem][ptx.Tx] = true
		}
	}
	// Redo rule: the log may show a transaction as committed (a step
	// outcome or resolution record carrying its id) while the crash hit
	// before the subsystem commit was applied. Such transactions are
	// in doubt at the subsystem with no prepared record, but they must
	// be committed, not presumed aborted — the log is the authority.
	redo := make(map[string]map[int64]bool) // subsystem -> tx set
	for _, img := range images {
		for _, ptx := range img.RedoCommit {
			if redo[ptx.Subsystem] == nil {
				redo[ptx.Subsystem] = make(map[int64]bool)
			}
			redo[ptx.Subsystem][ptx.Tx] = true
		}
	}
	for subName, recsInDoubt := range fed.InDoubt() {
		sub, _ := fed.Subsystem(subName)
		for _, r := range recsInDoubt {
			if known[subName][int64(r.Tx)] {
				continue
			}
			if redo[subName][int64(r.Tx)] {
				if err := sub.CommitPrepared(r.Tx); err != nil {
					return nil, fmt.Errorf("scheduler: redoing commit of transaction %d at %s: %w", r.Tx, subName, err)
				}
				report.Resolved2PCCommitted++
				m.Inc(metrics.DeferredCommitted2PC)
				m.Trace(metrics.TCommit, 0, "", int(r.Tx), "", "logged as committed: redo")
				continue
			}
			if err := sub.AbortPrepared(r.Tx); err != nil {
				return nil, fmt.Errorf("scheduler: aborting orphaned transaction %d at %s: %w", r.Tx, subName, err)
			}
			report.Resolved2PCAborted++
			m.Inc(metrics.RollbacksOrphaned)
			m.Trace(metrics.TRollback, 0, "", int(r.Tx), "", "no prepare record: presumed abort")
		}
	}

	// Re-read the log: phase 1 appended resolution records that the
	// instance rebuild must observe (a decided prepared transaction is
	// now committed, an undecided one rolled back). Recovery never
	// checkpoints, so the expansion's checkpoint is unchanged and the
	// new records land in its tail.
	raw, err = log.Records()
	if err != nil {
		return nil, err
	}
	recs = wal.Expand(raw).Records

	// Phase 2: rebuild instances of active processes and compute their
	// completions.
	type pendingCompletion struct {
		id    process.ID
		def   *process.Process
		inst  *process.Instance
		steps []process.Step
		// seqOf maps a local id to the WAL position of its commit, for
		// the global reverse ordering of compensations.
		seqOf map[int]int
	}
	var completions []*pendingCompletion
	for _, id := range ids {
		img := images[id]
		if img.Terminated {
			report.AlreadyTerminated = append(report.AlreadyTerminated, process.ID(id))
			continue
		}
		def := byID[resolveOrigin(process.ID(id))]
		if def == nil {
			return nil, fmt.Errorf("scheduler: recovery found unknown process %q in the log", id)
		}
		if def.ID != process.ID(id) {
			def = def.WithID(process.ID(id))
		}
		inst, seqOf, err := rebuildInstance(def, recs)
		if err != nil {
			return nil, fmt.Errorf("scheduler: rebuilding %s: %w", id, err)
		}
		mode := inst.Mode()
		steps, err := inst.Abort()
		if err != nil {
			return nil, fmt.Errorf("scheduler: completion of %s: %w", id, err)
		}
		completions = append(completions, &pendingCompletion{
			id: process.ID(id), def: def, inst: inst, steps: steps, seqOf: seqOf,
		})
		if mode == process.BREC {
			report.BackwardRecovered = append(report.BackwardRecovered, process.ID(id))
			m.Inc(metrics.BackwardRecoveries)
			m.Trace(metrics.TBackward, 0, id, 0, "", "group abort: B-REC")
		} else {
			report.ForwardRecovered = append(report.ForwardRecovered, process.ID(id))
			m.Inc(metrics.ForwardRecoveries)
			m.Trace(metrics.TForward, 0, id, 0, "", "group abort: F-REC")
		}
	}
	if len(completions) > 0 {
		// One group abort covers all interrupted processes
		// (Definition 8.2b).
		m.Inc(metrics.GroupAborts)
		m.Trace(metrics.TGroupAbort, 0, "", len(completions), "", "")
	}

	// Phase 3: execute the group abort. First all rollbacks of leftover
	// prepared transactions (no effects), then all compensations in
	// reverse global order of their bases (Lemma 2), then the forward
	// invocations per process in order (after conflicting compensations,
	// Lemma 3 — trivially satisfied by running all compensations first).
	type globalStep struct {
		pc   *pendingCompletion
		st   process.Step
		base int // WAL position of the base commit (compensations)
	}
	var rollbacks, comps, forwards []globalStep
	for _, pc := range completions {
		for _, st := range pc.steps {
			switch st.Kind {
			case process.StepAbortPrepared:
				rollbacks = append(rollbacks, globalStep{pc: pc, st: st})
			case process.StepCompensate:
				comps = append(comps, globalStep{pc: pc, st: st, base: pc.seqOf[st.Local]})
			case process.StepInvoke:
				forwards = append(forwards, globalStep{pc: pc, st: st})
			}
		}
	}
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].base > comps[j].base })

	exec := func(gs globalStep) error {
		switch gs.st.Kind {
		case process.StepAbortPrepared:
			// Already handled in phase 1 (presumed abort resolved the
			// in-doubt transaction); just update the instance.
			return gs.pc.inst.ApplyStep(gs.st)
		case process.StepCompensate, process.StepInvoke:
			// Prepare, force-log the outcome with the transaction id,
			// then commit. A crash between the log write and the commit
			// leaves an in-doubt transaction the next recovery redoes
			// via RedoCommit (exactly-once); a crash before the log
			// write leaves an orphan the next recovery presumes aborted
			// and the step is simply re-executed.
			var res *subsystem.Result
			for {
				var err error
				res, err = fed.Invoke(string(resolveOrigin(gs.pc.id)), gs.st.Service, subsystem.Prepare)
				if err == nil {
					break
				}
				if errors.Is(err, subsystem.ErrAborted) {
					continue // retriable: re-invoke
				}
				// Lock conflicts cannot persist here: recovery runs
				// sequentially and phase 1 released in-doubt locks.
				return fmt.Errorf("scheduler: recovery invoking %s: %w", gs.st.Service, err)
			}
			sub, ok := fed.Owner(gs.st.Service)
			if !ok {
				return fmt.Errorf("scheduler: recovery found unknown service %q", gs.st.Service)
			}
			if gs.st.Kind == process.StepCompensate {
				report.Compensations++
				m.Inc(metrics.RecoveryCompensations)
				m.Trace(metrics.TCompensate, 0, string(gs.pc.id), gs.st.Local, gs.st.Service, "recovery")
				log.Append(wal.Record{
					Type: wal.RecCompensate, Proc: string(gs.pc.id), Local: gs.st.Local,
					Service: gs.st.Service, Subsystem: sub.Name(), Tx: int64(res.Tx),
				})
			} else {
				report.ForwardInvocations++
				m.Inc(metrics.RecoveryForwardInvokes)
				m.Trace(metrics.TRecoveryStep, 0, string(gs.pc.id), gs.st.Local, gs.st.Service, "recovery")
				log.Append(wal.Record{
					Type: wal.RecOutcome, Proc: string(gs.pc.id), Local: gs.st.Local,
					Service: gs.st.Service, Subsystem: sub.Name(), Tx: int64(res.Tx), Outcome: "committed",
				})
			}
			if err := sub.CommitPrepared(res.Tx); err != nil {
				return fmt.Errorf("scheduler: recovery committing %s: %w", gs.st.Service, err)
			}
			return gs.pc.inst.ApplyStep(gs.st)
		}
		return nil
	}
	for _, gs := range rollbacks {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	for _, gs := range comps {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	// Forward completion invocations append new committed events after
	// everything already in the log, so any conflict with an earlier
	// committed activity orders that activity's process first. Live,
	// the dispatch gates keep such edges acyclic; here they are gone,
	// so run the forward steps in a topological order of the
	// serialization edges the log witnesses (built after the
	// compensations ran: a compensated base no longer constrains).
	if len(forwards) > 0 {
		rawNow, err := log.Records()
		if err != nil {
			return nil, err
		}
		recsNow := wal.Expand(rawNow).Records
		fwSteps := make(map[process.ID][]string)
		for _, gs := range forwards {
			fwSteps[gs.pc.id] = append(fwSteps[gs.pc.id], gs.st.Service)
		}
		rank, err := commitSerializationRanks(fed, recsNow, fwSteps, ckpt)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(forwards, func(i, j int) bool {
			return rank[forwards[i].pc.id] < rank[forwards[j].pc.id]
		})
	}
	for _, gs := range forwards {
		if err := exec(gs); err != nil {
			return nil, err
		}
	}
	for _, pc := range completions {
		pc.inst.MarkTerminated(false)
		log.Append(wal.Record{Type: wal.RecTerminate, Proc: string(pc.id), Committed: false})
	}
	return report, nil
}

// commitSerializationRanks orders the log's processes consistently with
// the serialization edges the recovered schedule will contain: P
// precedes Q when a committed, uncompensated activity of P conflicts
// with a later one of Q, and also when such an activity of P conflicts
// with a forward completion step Q has yet to run (the step is appended
// after everything in the log, so that edge is mandatory — mirroring
// Schedule.completionRank). Committed activities sit at their *commit*
// position: immediate commits at the committed outcome record,
// 2PC-deferred commits at the RecResolved record (Lemma 1). The result
// is a deterministic topological order (ties broken by first-commit
// position, then id). A correct log cannot contain a cycle; should one
// appear anyway, the remaining processes fall back to the tie-break
// order.
//
// When recovery replays from a checkpoint (ckpt non-nil), the records
// of summarized processes are gone — edges that ran through them are
// re-created from the checkpoint's closure (Edges, live→live paths the
// build already resolved) and its Shadow sets (summarized committed
// services reachable from each live process, conflict-checked against
// post-horizon events and the pending forward steps). Both encode only
// paths that truly existed, so no spurious cycle can appear.
func commitSerializationRanks(fed *subsystem.Federation, recs []wal.Record, fwSteps map[process.ID][]string, ckpt *wal.Checkpoint) (map[process.ID]int, error) {
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	compensated := make(map[string]bool) // "proc/local"
	for _, r := range recs {
		if r.Type == wal.RecCompensate {
			compensated[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = true
		}
	}
	type commEv struct {
		proc process.ID
		svc  string
		lsn  int64
	}
	var evs []commEv
	first := make(map[process.ID]int)
	nodes := make(map[process.ID]bool)
	emitted := make(map[string]bool) // "proc/local" (redo-commit dedup)
	for i, r := range recs {
		if r.Proc != "" {
			nodes[process.ID(r.Proc)] = true
		}
		committed := (r.Type == wal.RecOutcome && r.Outcome == "committed") ||
			(r.Type == wal.RecResolved && r.Commit)
		key := fmt.Sprintf("%s/%d", r.Proc, r.Local)
		if !committed || compensated[key] || emitted[key] {
			continue
		}
		emitted[key] = true
		p := process.ID(r.Proc)
		if _, ok := first[p]; !ok {
			first[p] = i
		}
		evs = append(evs, commEv{proc: p, svc: r.Service, lsn: r.LSN})
	}
	succ := make(map[process.ID]map[process.ID]bool)
	indeg := make(map[process.ID]int)
	addEdge := func(a, b process.ID) {
		if a == b || succ[a][b] {
			return
		}
		if succ[a] == nil {
			succ[a] = make(map[process.ID]bool)
		}
		succ[a][b] = true
		indeg[b]++
	}
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			if table.Conflicts(evs[i].svc, evs[j].svc) {
				addEdge(evs[i].proc, evs[j].proc)
			}
		}
		for q, steps := range fwSteps {
			if q == evs[i].proc {
				continue
			}
			for _, svc := range steps {
				if table.Conflicts(evs[i].svc, svc) {
					addEdge(evs[i].proc, q)
					break
				}
			}
		}
	}
	if ckpt != nil {
		// Closure edges among live processes, resolved at build time.
		for _, ed := range ckpt.Edges {
			a, b := process.ID(ed[0]), process.ID(ed[1])
			if nodes[a] && nodes[b] {
				addEdge(a, b)
			}
		}
		// Shadow services: committed work of summarized processes
		// reachable from a live one. A conflict with an event the
		// build could not see (past the horizon) or with a pending
		// forward step re-creates the transitive edge.
		for p, svcs := range ckpt.Shadow {
			pid := process.ID(p)
			if !nodes[pid] {
				continue
			}
			for _, s := range svcs {
				for _, e := range evs {
					if e.lsn > ckpt.Horizon && e.proc != pid && table.Conflicts(s, e.svc) {
						addEdge(pid, e.proc)
					}
				}
				for q, steps := range fwSteps {
					if q == pid {
						continue
					}
					for _, svc := range steps {
						if table.Conflicts(s, svc) {
							addEdge(pid, q)
							break
						}
					}
				}
			}
		}
	}
	order := make([]process.ID, 0, len(nodes))
	for p := range nodes {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool {
		fi, oki := first[order[i]]
		fj, okj := first[order[j]]
		if oki && okj && fi != fj {
			return fi < fj
		}
		if oki != okj {
			return oki // processes with committed work first
		}
		return order[i] < order[j]
	})
	rank := make(map[process.ID]int, len(order))
	placed := make(map[process.ID]bool)
	for len(rank) < len(order) {
		var pick process.ID
		found := false
		for _, p := range order {
			if !placed[p] && indeg[p] == 0 {
				pick, found = p, true
				break
			}
		}
		if !found {
			for _, p := range order {
				if !placed[p] {
					placed[p] = true
					rank[p] = len(rank)
				}
			}
			break
		}
		placed[pick] = true
		rank[pick] = len(rank)
		for q := range succ[pick] {
			indeg[q]--
		}
	}
	return rank, nil
}

// Origin strips an incarnation id's restart suffixes ("P1+r2",
// "P1+r2+r1" -> "P1"): the identity under which subsystems track the
// process's locks and deterministic failure rules. Engines resolve
// every admitted job through it, so work re-submitted under a derived
// id (restart recovery, the ingestion server's resume set) stays the
// same process to the federation.
func Origin(id process.ID) process.ID { return resolveOrigin(id) }

// resolveOrigin strips a restart suffix ("P1+r2" -> "P1").
func resolveOrigin(id process.ID) process.ID {
	s := string(id)
	for i := 0; i < len(s); i++ {
		if s[i] == '+' {
			return process.ID(s[:i])
		}
	}
	return id
}

// rebuildInstance replays a process's WAL records into a fresh instance
// and returns it together with the WAL position of each commit.
func rebuildInstance(def *process.Process, recs []wal.Record) (*process.Instance, map[int]int, error) {
	inst := process.NewInstance(def)
	seqOf := make(map[int]int)
	for i, r := range recs {
		if r.Proc != string(def.ID) {
			continue
		}
		switch r.Type {
		case wal.RecOutcome:
			switch r.Outcome {
			case "committed":
				if st := inst.Status(r.Local); st == process.Pending || st == process.Prepared {
					if err := inst.MarkCommitted(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			case "prepared":
				if inst.Status(r.Local) == process.Pending {
					if err := inst.MarkPrepared(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			}
		case wal.RecResolved:
			if r.Commit {
				if inst.Status(r.Local) == process.Prepared {
					if err := inst.MarkCommitted(r.Local); err != nil {
						return nil, nil, err
					}
					seqOf[r.Local] = i
				}
			} else if inst.Status(r.Local) == process.Prepared {
				// Presumed abort rolled the local transaction back without
				// failing the process: the activity returns to pending so a
				// forward-recovery completion can re-invoke it (an
				// aborted-prepared activity would poison the F-REC path).
				if err := inst.ResetPrepared(r.Local); err != nil {
					return nil, nil, err
				}
			}
		case wal.RecFailed:
			if inst.Status(r.Local) == process.Pending {
				if _, err := inst.MarkFailed(r.Local); err != nil {
					return nil, nil, err
				}
			}
		case wal.RecCompensate:
			if inst.Status(r.Local) == process.Committed {
				if err := inst.MarkCompensated(r.Local); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return inst, seqOf, nil
}
