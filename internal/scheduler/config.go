// Package scheduler implements the transactional process scheduler the
// paper's correctness criterion is designed for: an online scheduler
// that executes processes against transactional subsystems while
// maintaining prefix-reducibility (PRED) of the observed process
// schedule — and therefore serializability and process-recoverability
// (Theorem 1).
//
// The PRED protocol operationalizes the paper's results:
//
//   - conflicting activities are ordered and the process-level conflict
//     graph is kept acyclic (serializability);
//   - an activity may conflict with an executed activity of an *active*
//     process only when that process can provably no longer invalidate
//     it — it is forward-recoverable and none of its potential recovery
//     services conflicts (the quasi-commit exploitation of Example 10) —
//     or, in cascading mode, when the new activity is compensatable
//     (Lemma 1.2) and the scheduler accepts a cascading abort;
//   - commits of non-compensatable activities are deferred and performed
//     atomically per process with a two phase commit protocol once every
//     conflicting predecessor process has terminated (Lemma 1,
//     Section 3.5);
//   - compensating activities execute in reverse order of their base
//     activities, also across processes (Lemma 2), and before
//     conflicting retriable forward-recovery activities (Lemma 3);
//   - every decision is written to a write-ahead log first, so a crash
//     is resolved by the group abort of Definition 8.2b (backward
//     completion of B-REC processes, forward completion of F-REC
//     processes, presumed-commit/abort resolution of in-doubt
//     transactions).
//
// Baselines for the benchmark harness: a serial scheduler, a
// conservative process-level locking scheduler, and a CC-only scheduler
// that orders conflicts for serializability but ignores recovery (the
// approach of [AAHD97] the paper argues is insufficient).
package scheduler

import (
	"transproc/internal/metrics"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// Mode selects the scheduling policy.
type Mode int

const (
	// PRED is the paper's protocol in avoidance flavour: dependencies on
	// active processes are allowed only when the active process's
	// potential completions provably cannot conflict (quasi-commit).
	// No cascading aborts ever occur.
	PRED Mode = iota
	// PREDCascade additionally allows compensatable activities to
	// depend on active backward-recoverable processes (the Figure 7
	// pattern); if such a predecessor aborts, dependents are
	// cascade-aborted in reverse order (Lemma 2) and restarted.
	PREDCascade
	// Serial runs one process at a time.
	Serial
	// Conservative admits a process only when its full service
	// footprint does not conflict with any running process
	// (process-level conservative locking).
	Conservative
	// CCOnly orders conflicting activities for serializability but
	// ignores recovery entirely: no deferred commits, no Lemma-1
	// blocking. Under failures it produces non-PRED schedules and can
	// leave inconsistencies (Section 2.2's motivating anomaly).
	CCOnly
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case PRED:
		return "pred"
	case PREDCascade:
		return "pred-cascade"
	case Serial:
		return "serial"
	case Conservative:
		return "conservative"
	case CCOnly:
		return "cc-only"
	default:
		return "unknown"
	}
}

// Config parameterizes an engine run.
type Config struct {
	Mode Mode
	// Log is the scheduler's write-ahead log; defaults to an in-memory
	// log.
	Log wal.Log
	// MaxRestarts bounds per-process restarts after cascading, wound or
	// victim aborts; beyond it the process terminates aborted.
	// Restarts re-enter with exponential backoff. Default 8.
	MaxRestarts int
	// CrashAfterEvents, when positive, stops the run abruptly after
	// that many invocation completions, simulating a scheduler crash;
	// subsystem and log state survive for recovery.
	CrashAfterEvents int
	// BlockPivots switches the PRED modes from "execute non-compensatable
	// activities into the prepared state and defer their commit" to
	// "do not even execute them while conflicting predecessors are
	// active" (the ablation of the deferred-commit design).
	BlockPivots bool
	// WeakOrder executes activity invocations under the weak order of
	// Section 3.6: conflicting local transactions may overlap inside a
	// subsystem, with the commit order enforced by the subsystem
	// (commit-order serializability). When a weakly preceding
	// transaction aborts, overlapped dependents are rolled back and
	// re-invoked — not treated as failures of their processes. Applies
	// to the PRED-family modes.
	WeakOrder bool
	// Metrics is the observability registry the engine (and the
	// subsystems, 2PC coordinator and WAL it drives) records counters,
	// histograms and the decision trace into. nil (the default) is a
	// no-op sink that adds zero allocations to the hot path.
	Metrics *metrics.Registry
	// MaxStalls bounds deadlock-resolution victim aborts per run.
	// Default 256.
	MaxStalls int
	// Inject, when non-nil, is called at named crash points around the
	// engine's force-log sites ("sched:before-forcelog",
	// "sched:after-forcelog") and is propagated to the 2PC coordinator
	// ("twopc:after-decision", "twopc:mid-resolve"). A fault plan
	// (internal/fault) may panic through it with a crash sentinel;
	// RunJobs recovers the sentinel and returns ErrCrashed together with
	// the partial result, leaving log and subsystem state for Recover.
	// No-op when nil.
	Inject func(point string)
	// CheckpointEvery, when positive, takes a fuzzy checkpoint
	// (wal.TakeCheckpoint) after every that many engine force-log
	// appends: the checkpoint record summarizes all pre-horizon history
	// so recovery replays checkpoint + tail instead of the whole log.
	// 0 (the default) disables checkpointing.
	CheckpointEvery int
	// CheckpointLimit caps the checkpoints of one run (0 = unlimited);
	// torture scenarios use it to age a checkpoint under a long tail.
	CheckpointLimit int
	// CompactOnCheckpoint atomically rewrites the log as
	// checkpoint + tail after each checkpoint, when the log supports it
	// (wal.Compactor): temp file → fsync → rename → parent-dir fsync
	// for the file log, an in-memory splice for MemLog.
	CompactOnCheckpoint bool
	// GroupCommit, when enabled (MaxBatch > 0), wraps the log in a
	// batching appender (wal.GroupAppender). The sequential engine
	// appends from one goroutine, so batches rarely exceed one record;
	// the option exists so differential and torture scenarios exercise
	// the same append stream shape as the concurrent runtime,
	// including the "wal:group-fsync" crash point.
	GroupCommit wal.GroupCommit
	// DebugFirstStall prints the engine state at the first stall
	// resolution (diagnostic aid).
	DebugFirstStall bool
	// Resilience, when non-nil, routes regular (strong-order) activity
	// invocations through a resilience layer (internal/chaos): flaky
	// transport, typed retries, circuit breakers. The layer surfaces
	// only outcomes the engine already handles — ErrLocked parks the
	// activity, invocation failures (ErrAborted/ErrTransient/ErrTimeout)
	// take the failed-completion path: retriable activities are
	// re-invoked, everything else steers onto ◁ alternatives or backward
	// recovery. Weak-order invocations and 2PC resolution stay on the
	// direct path (the chaos boundary is invocation delivery).
	Resilience subsystem.ResilientInvoker
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = wal.NewMemLog()
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.MaxStalls == 0 {
		c.MaxStalls = 256
	}
	return c
}

// Metrics aggregates counters of one run. Times are in virtual ticks.
type Metrics struct {
	Makespan       int64
	Invocations    int64 // subsystem invocations attempted (incl. retries)
	Retries        int64 // transient retriable re-invocations
	Compensations  int64
	Rollbacks      int64 // prepared transactions rolled back
	Deferrals      int64 // commit deferrals of non-compensatable activities
	TwoPCCommits   int64 // prepared transactions committed via 2PC
	LockWaits      int64 // dispatch attempts denied by subsystem locks
	PolicyWaits    int64 // dispatch attempts denied by the policy
	Cascades       int64 // cascading aborts triggered
	WeakDeps       int64 // commit-order dependencies recorded (weak order)
	WeakOrderWaits int64 // weak commits delayed by ErrOrder
	WeakRestarts   int64 // re-invocations forced by aborted weak dependencies
	Restarts       int64 // process restarts
	VictimAborts   int64 // stall-resolution aborts
	CommittedProcs int
	AbortedProcs   int
}

// Throughput returns committed processes per 1000 virtual ticks.
func (m Metrics) Throughput() float64 {
	if m.Makespan == 0 {
		return 0
	}
	return float64(m.CommittedProcs) * 1000 / float64(m.Makespan)
}

// Outcome summarizes one process's fate.
type Outcome struct {
	Committed bool
	Aborted   bool
	Restarts  int
	Start     int64
	End       int64
}
