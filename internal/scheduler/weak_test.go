package scheduler_test

import (
	"fmt"
	"testing"

	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// TestWeakOrderRunsAllModesCorrectly sweeps workloads with weak order
// enabled and asserts the PRED invariant still holds.
func TestWeakOrderRunsCorrectly(t *testing.T) {
	for _, mode := range []scheduler.Mode{scheduler.PRED, scheduler.PREDCascade} {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				p := workload.DefaultProfile(seed)
				p.Processes = 10
				p.ConflictProb = 0.5
				p.PermFailureProb = 0.1
				w := workload.MustGenerate(p)
				eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode, WeakOrder: true})
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.RunJobs(w.Jobs)
				if err != nil {
					t.Fatal(err)
				}
				if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
					t.Fatalf("only %d of %d processes terminated", got, p.Processes)
				}
				ok, at, _, err := res.Schedule.PRED()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("weak-order schedule not PRED (prefix %d):\n%s", at, res.Schedule)
				}
				if n := len(w.Fed.InDoubt()); n != 0 {
					t.Fatalf("%d in-doubt transactions remain", n)
				}
				for item, v := range w.Fed.Snapshot() {
					if v < 0 {
						t.Fatalf("item %s negative (%d)", item, v)
					}
				}
			})
		}
	}
}

// TestWeakOrderReducesLockWaits verifies the point of Section 3.6: under
// contention, overlapping conflicting local transactions removes
// subsystem lock waits (they become commit-order dependencies instead).
func TestWeakOrderReducesLockWaits(t *testing.T) {
	run := func(weakOrder bool) *scheduler.Result {
		p := workload.DefaultProfile(42)
		p.Processes = 24
		p.ConflictProb = 0.6
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED, WeakOrder: weakOrder})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	strong := run(false)
	weak := run(true)
	if strong.Metrics.LockWaits == 0 {
		t.Skip("no lock contention in this workload; nothing to compare")
	}
	if weak.Metrics.LockWaits >= strong.Metrics.LockWaits {
		t.Fatalf("weak order should remove lock waits: strong=%d weak=%d",
			strong.Metrics.LockWaits, weak.Metrics.LockWaits)
	}
	if weak.Metrics.WeakDeps == 0 {
		t.Fatal("weak order must have recorded commit-order dependencies")
	}
	if weak.Metrics.Makespan > strong.Metrics.Makespan {
		t.Fatalf("weak order should not be slower: strong=%d weak=%d",
			strong.Metrics.Makespan, weak.Metrics.Makespan)
	}
	t.Logf("makespan strong=%d weak=%d, lockWaits %d -> %d, weakDeps=%d waits=%d restarts=%d",
		strong.Metrics.Makespan, weak.Metrics.Makespan,
		strong.Metrics.LockWaits, weak.Metrics.LockWaits,
		weak.Metrics.WeakDeps, weak.Metrics.WeakOrderWaits, weak.Metrics.WeakRestarts)
}

// TestWeakOrderPaperProcesses runs the paper fixtures with weak order.
func TestWeakOrderPaperProcesses(t *testing.T) {
	fed := paper.Federation(7)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade, WeakOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2(), paper.P3()})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, res)
	if res.Metrics.CommittedProcs < 3 {
		t.Fatalf("all must commit: %+v", res.Metrics)
	}
}

// TestWeakOrderWithFailures exercises the §3.6 restart path end to end:
// retriable transient failures under weak order cascade re-invocations
// of weakly following transactions without failing their processes.
func TestWeakOrderWithFailures(t *testing.T) {
	p := workload.DefaultProfile(9)
	p.Processes = 12
	p.ConflictProb = 0.7
	p.TransientFailureProb = 0.35
	w := workload.MustGenerate(p)
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED, WeakOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, _, err := res.Schedule.PRED()
	if err != nil || !ok {
		t.Fatalf("PRED = %v, %v", ok, err)
	}
	if res.Metrics.CommittedProcs == 0 {
		t.Fatal("some processes must commit")
	}
}
