package scheduler_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/workload"
)

// TestAvoidancePreventsWedge constructs a deterministic mutual
// wait between two processes that a lock-based scheduler would resolve
// with a victim abort; the avoidance protocol's forced-order graph
// instead refuses the wedge-forming dispatch up front and serializes
// the two processes — no abort needed.
//
//	Pa: c(h1) ≪ c(h2) ≪ p ≪ r(x)
//	Pb: c(h2) ≪ p ≪ ( c(h1) ≪ r(x) | r(h2) )
//
// Pa blocks on c(h2): Pb is active and its potential recovery services
// include h2. Pb blocks on c(h1): Pa is active and backward-recoverable.
// The stall resolver aborts Pb (younger); its completion runs the
// lowest-priority alternative r(h2) as a forward recovery invocation,
// then Pb restarts once Pa finished.
func TestAvoidancePreventsWedge(t *testing.T) {
	sub := subsystem.New("rm", 1)
	reg := func(name string, kind activity.Kind, item string) {
		spec := activity.Spec{Name: name, Kind: kind, Subsystem: "rm", WriteSet: []string{item}, Cost: 1}
		if kind == activity.Compensatable {
			spec.Compensation = name + "⁻¹"
		}
		sub.MustRegister(spec)
	}
	reg("cH1", activity.Compensatable, "h1")
	reg("cH1b", activity.Compensatable, "h1")
	reg("cH2", activity.Compensatable, "h2")
	reg("cH2b", activity.Compensatable, "h2")
	reg("rH2", activity.Retriable, "h2")
	reg("piv", activity.Pivot, "pv1")
	reg("piv2", activity.Pivot, "pv2")
	reg("rX", activity.Retriable, "x")
	fed := subsystem.NewFederation()
	fed.MustAdd(sub)

	pa := process.NewBuilder("Pa").
		Add(1, "cH1", activity.Compensatable).
		Add(2, "cH2", activity.Compensatable).
		Add(3, "piv", activity.Pivot).
		Add(4, "rX", activity.Retriable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).
		MustBuild()
	pb := process.NewBuilder("Pb").
		Add(1, "cH2b", activity.Compensatable).
		Add(2, "piv2", activity.Pivot).
		Add(3, "cH1b", activity.Compensatable).
		Add(4, "rX", activity.Retriable).
		Add(5, "rH2", activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 5). // preferred c(h1) continuation, retriable alternative
		Seq(3, 4).
		MustBuild()

	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*process.Process{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	s := verifySchedule(t, res)
	if !res.Outcomes["Pa"].Committed {
		t.Fatalf("Pa must commit: %s", s)
	}
	// The forced-order graph sees the potential wedge through the
	// processes' *potential* services and serializes them up front: no
	// victim abort is ever needed, and both processes commit. (The
	// engine's actual forward-recovery path is exercised by
	// TestForwardRecoveryCCOnly below, where the baseline mode lacks
	// avoidance and must abort a wedged process.)
	if res.Metrics.VictimAborts != 0 {
		t.Fatalf("avoidance mode should have prevented the wedge: %s", s)
	}
	if !res.Outcomes["Pb"].Committed {
		t.Fatalf("Pb must commit: %s", s)
	}
	if strings.Contains(s.String(), "(ab)") {
		t.Fatalf("no aborts expected: %s", s)
	}
	for item, v := range fed.Snapshot() {
		if v < 0 {
			t.Fatalf("%s negative", item)
		}
	}
}

// TestHighContentionNeedsNoVictims pins the profile that used to force
// victim aborts under PRED. Two mechanisms since closed that wedge
// class entirely: semantic item locks let write locks be shared across
// holders of the same commutative service family (Definition 6 — the
// historical victims were all lock waits between *commuting* services),
// and the forced-order graph's potential edges deny the residual
// cycle-forming dispatches up front (see TestAvoidancePreventsWedge).
// High contention now costs throughput, never aborts: the pinned
// scenario must commit every process with zero victims while staying
// PRED and consistent. A regression here means either the lock manager
// stopped recognizing commutativity or avoidance stopped seeing a
// potential cycle.
func TestHighContentionNeedsNoVictims(t *testing.T) {
	for _, seed := range []int64{218, 7, 42} {
		p := workload.DefaultProfile(seed)
		p.Processes = 16
		p.ConflictProb = 0.85
		p.PermFailureProb = 0.2
		p.ParallelProb = 0.5
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.VictimAborts != 0 {
			t.Fatalf("seed %d: %d victim aborts; semantic locking + avoidance should prevent all wedges",
				seed, res.Metrics.VictimAborts)
		}
		if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
			t.Fatalf("seed %d: only %d of %d processes terminated", seed, got, p.Processes)
		}
		ok, at, _, err := res.Schedule.PRED()
		if err != nil || !ok {
			t.Fatalf("seed %d: PRED = %v at=%d err=%v", seed, ok, at, err)
		}
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("seed %d: %s negative (%d)", seed, item, v)
			}
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions remain", seed, n)
		}
	}
}

// TestForwardRecoveryCCOnly exercises the engine's victim-abort and
// forward-recovery machinery, which PRED mode makes unreachable (see
// TestHighContentionNeedsNoVictims). The CCOnly baseline has no
// avoidance: conflicting executions interleave freely until an executed
// serialization edge would close a cycle, the denial wedges the
// process, and the stall resolver picks a victim. A victim past its
// pivot is forward-recoverable — the engine must run its remaining
// retriable invocations between A_i and C_i(ab). CCOnly gives no PRED
// guarantee by design, but termination and subsystem-level atomicity
// must still hold.
func TestForwardRecoveryCCOnly(t *testing.T) {
	p := workload.DefaultProfile(1)
	p.Processes = 16
	p.ConflictProb = 0.85
	p.PermFailureProb = 0.2
	p.ParallelProb = 0.5
	w := workload.MustGenerate(p)
	// Checkpointing runs alongside to show victim aborts and fuzzy
	// checkpoints compose.
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.CCOnly, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.VictimAborts == 0 {
		t.Fatal("scenario must produce victim aborts (seed drift?)")
	}
	if res.Metrics.Throughput() <= 0 {
		t.Fatal("throughput must be positive for a run that commits processes")
	}
	// Find a forward recovery invocation: a retriable Invoke between an
	// AbortBegin and the abort termination of the same process.
	evs := res.Schedule.Events()
	forward := false
	for i, e := range evs {
		if e.Type != schedule.AbortBegin {
			continue
		}
		for j := i + 1; j < len(evs); j++ {
			f := evs[j]
			if f.Proc != e.Proc {
				continue
			}
			if f.Type == schedule.Invoke && !f.Inverse && f.Kind == activity.Retriable {
				forward = true
			}
			if f.Type == schedule.Terminate {
				break
			}
		}
	}
	if !forward {
		t.Fatal("no forward recovery invocation found (seed drift?)")
	}
	if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
		t.Fatalf("only %d of %d processes terminated", got, p.Processes)
	}
	for item, v := range w.Fed.Snapshot() {
		if v < 0 {
			t.Fatalf("%s negative (%d)", item, v)
		}
	}
	if n := len(w.Fed.InDoubt()); n != 0 {
		t.Fatalf("%d in-doubt transactions remain", n)
	}
}
